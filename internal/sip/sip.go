// Package sip implements the Super Instruction Processor: the parallel
// virtual machine that executes SIA byte code (paper §V).
//
// A SIP instance is organized as a master, a set of workers, and a set of
// I/O servers (paper §V-B), each played by goroutines communicating
// through the in-process MPI layer:
//
//   - The master assigns pardo iterations to workers in guided chunks
//     whose size decreases as the computation proceeds, and coordinates
//     checkpointing and shutdown.
//   - Each worker interprets the byte code: it manages temp/local/static
//     blocks, fetches distributed blocks asynchronously with get
//     (overlapping communication with computation and prefetching ahead
//     in sequential loops), stores them with put, and talks to the I/O
//     servers for served (disk-backed) arrays.  A service goroutine per
//     worker answers get/put requests against the worker's partition of
//     each distributed array, providing the asynchronous progress a real
//     MPI implementation gets from its progress engine.
//   - Each I/O server holds a write-back LRU cache of served-array
//     blocks, lazily persisting dirty blocks to scratch files.
//
// Rank layout: rank 0 is the master, ranks 1..W are workers, and ranks
// W+1..W+S are I/O servers.
package sip

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/bytecode"
	"repro/internal/compiler"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/segment"
)

// Message tags.
const (
	tagChunkReq  = 1  // worker -> master: request a pardo chunk
	tagChunkRep  = 2  // master -> worker: iteration chunk
	tagService   = 3  // worker -> worker service loop: get/put/shutdown
	tagPutAck    = 4  // home -> origin: put applied
	tagServer    = 5  // worker -> server: request/prepare/flush/shutdown
	tagPrepAck   = 6  // server -> worker: prepare applied
	tagFlushAck  = 7  // server -> worker: all dirty blocks written
	tagDone      = 8  // worker -> master: reached halt
	tagCkpt      = 9  // worker <-> master: checkpoint traffic
	tagGather    = 10 // worker/server -> master: final array gather
	tagSync      = 11 // worker -> master: recovery sync-point report
	tagSyncRep   = 12 // master -> worker: sync-point release / replay order
	tagRepl      = 13 // server -> master: re-replication control traffic
	tagObs       = 14 // worker/server -> master: telemetry reports
	tagJob       = 15 // pool -> rank agents: job start/stop control plane
	tagReplyBase = 1 << 16
)

// jobTagStride is the tag-space stride between concurrent jobs sharing
// one world (sial serve).  Every tag a job's master and workers use is
// offset by job*jobTagStride, so two jobs' chunk replies, acks, and
// reply tags can never collide in a shared mailbox.  Job 0 (the batch
// path) keeps the historical un-strided tags.  The stride leaves room
// for tagReplyBase plus hundreds of thousands of outstanding replies
// per job.
const jobTagStride = 1 << 20

// jobTag offsets a base tag into job's tag space.  I/O servers are
// shared between jobs and listen on the *global* tagServer; their
// replies go back strided so each job's ranks only ever see their own
// traffic.
func jobTag(job, t int) int { return job*jobTagStride + t }

// ChunkGate arbitrates pardo chunk dispatch between concurrent jobs
// (FIFO-with-fairness scheduling in sial serve).  The master calls
// Acquire before answering each chunk request; a gate may block the
// calling job's dispatch while other active jobs are behind on their
// share.  Implementations must be safe for concurrent use by many
// per-job master goroutines.
type ChunkGate interface {
	Acquire(job int)
}

// PresetFunc initializes one block of an array at startup.  coord is the
// block coordinate; lo and hi are the inclusive element bounds per
// dimension.  Returning nil leaves the block unallocated (implicitly
// zero).
type PresetFunc func(coord segment.Coord, lo, hi []int) *block.Block

// IntegralFunc computes an integral block on demand for
// compute_integrals.  arr is the SIAL array name; lo and hi are the
// inclusive element bounds of the block.
type IntegralFunc func(arr string, lo, hi []int) *block.Block

// ExecCtx gives user super instructions access to their execution
// environment.
type ExecCtx struct {
	Worker int // worker index, 0-based
	Layout *bytecode.Layout
}

// SuperFunc is a user-registered computational super instruction invoked
// by the SIAL execute statement.  Blocks are resolved read-write; scalars
// are passed by pointer.
type SuperFunc func(ctx *ExecCtx, blocks []*block.Block, scalars []*float64) error

// Config parameterizes a SIP run.
type Config struct {
	// Workers is the number of worker tasks (>= 1).
	Workers int
	// Servers is the number of I/O server tasks; required only when the
	// program uses served arrays.
	Servers int
	// Params supplies values for the program's symbolic constants.
	Params map[string]int
	// Seg selects segment sizes (the key runtime tuning parameter).
	Seg bytecode.SegConfig
	// PrefetchWindow is the number of future do-loop iterations whose
	// get blocks are requested ahead of use.  0 disables prefetching.
	PrefetchWindow int
	// CacheBlocks bounds each worker's remote-block cache (0 = 1024).
	CacheBlocks int
	// ServerCacheBlocks bounds each I/O server's block cache (0 = 1024).
	ServerCacheBlocks int
	// ScratchDir is where served arrays and checkpoints are written.
	// Empty means a fresh temporary directory.
	ScratchDir string
	// Placement chooses the home worker (0-based index) for each block
	// of a distributed array.  Nil selects the default static hash.
	// The paper emphasizes that "the approach to data distribution
	// could be modified and improved at any time without requiring any
	// change in the SIAL programs" (§V-B) — SIAL semantics never depend
	// on placement.
	Placement PlacementFunc
	// Preset initializes distributed and served arrays by name before
	// execution begins.
	Preset map[string]PresetFunc
	// Super registers user super instructions by name.
	Super map[string]SuperFunc
	// Integrals computes blocks for compute_integrals.  Defaults to a
	// deterministic synthetic generator.
	Integrals IntegralFunc
	// Output receives print statements (default os.Stdout).  Prints are
	// executed by worker 1 only.
	Output io.Writer
	// Trace, when non-nil, receives one line per instruction executed
	// by each traced worker: the rank, pc, source line, opcode, and
	// current pardo iteration.  The transparent relationship between
	// SIAL source and execution is a design goal the paper emphasizes
	// (§VI-B).  All workers trace unless TraceRanks narrows the set.
	Trace io.Writer
	// TraceRanks restricts Trace (and nothing else) to these world
	// ranks.  Empty means every worker traces.
	TraceRanks []int
	// Tracer, when non-nil, records per-rank spans (instruction, get,
	// put, wait, chunk, server cache, disk) for Chrome-trace export.
	Tracer *obs.Tracer
	// Metrics, when non-nil, collects named counters/gauges/histograms:
	// per-tag MPI message counts and bytes, mailbox depth high-water
	// marks, worker fetch/prefetch/cache statistics, wait-time
	// histograms, and server cache/disk counters.
	Metrics *obs.Registry
	// GatherArrays collects all distributed and served array contents
	// into the Result after the run (for tests and small problems).
	GatherArrays bool
	// RecvTimeout bounds each blocking receive a worker or the master
	// performs (chunk replies, block replies, acks, checkpoint traffic,
	// gather).  0 disables deadlines (the default, right for in-process
	// runs where no rank can silently vanish).  When a receive times out
	// after all retries, the waiting rank diagnoses the silent peer with
	// an mpi.RankFailure and fails the whole world instead of hanging.
	// It must exceed the longest legitimate quiet stretch (e.g. a server
	// flushing a large cache to disk).
	RecvTimeout time.Duration
	// RecvRetries is the number of extra RecvTimeout-long waits after the
	// first before a receive is declared failed (default 2, so a receive
	// waits 3*RecvTimeout in total).  Negative means no retries.
	RecvRetries int
	// Recover turns a diagnosed worker-rank death into a degraded
	// completion instead of an abort: the dead worker is evicted from
	// the world, the master re-dispatches its unacknowledged pardo
	// iterations to the survivors, replayed side effects are
	// deduplicated at their destinations, and sync points (barriers,
	// collectives, checkpoints) are mediated by the master over the
	// live workers.  Blocks of *distributed* (worker-homed) arrays on
	// the dead worker are lost — recovery is exact for programs that
	// stage mutable state through served arrays and scalars (see
	// docs/FAULTS.md, "Recovery").  Master death remains fatal, and so
	// does I/O-server death unless Replicas > 1.  Off by default: PR 3's
	// fail-fast diagnosis.
	Recover bool
	// Replicas is the number of I/O servers holding each served-array
	// block (default 1: today's single-home placement, byte-identical
	// protocol).  With Replicas > 1 every served block gets a
	// deterministic replica set chosen by rendezvous hashing over the
	// live servers: put/prepare fans out to all replicas (the effect-seq
	// dedup keeps retries idempotent), request reads from the primary
	// with failover to backups, and — combined with Recover — a dead
	// server rank is evicted instead of fatal, with an anti-entropy pass
	// at the next server barrier re-replicating under-replicated blocks.
	// Must not exceed Servers.
	Replicas int
	// ObsShip enables the observability plane for distributed runs
	// (RunRank): every non-master rank periodically — and once more
	// after its run ends, folding in the final metrics — ships its
	// metric snapshot and new trace ring segments to the master on
	// tagObs, where ObsAgg merges them into one cluster view.  No-op
	// for the in-process Run, whose ranks already share one registry
	// and tracer.
	ObsShip bool
	// ObsInterval is the period between telemetry shipments (default
	// 500ms).
	ObsInterval time.Duration
	// ObsAgg is the master-side sink of shipped telemetry (rank 0
	// only).  Required when ObsShip is set on the master.
	ObsAgg *obs.Aggregator
	// FlightDir, when non-empty, enables the flight recorder on the
	// master: whenever a rank is evicted or diagnosed failed, a
	// post-mortem JSON bundle (every reachable rank's last metrics and
	// trace spans, plus the diagnosis) is written there.
	FlightDir string
	// Job is this run's identifier inside a shared pool world
	// (sial serve).  0 — the default — is the batch path with the
	// historical un-strided message tags and un-prefixed block keys.
	// A positive Job strides every tag the job's master and workers use
	// by Job*jobTagStride and prefixes every block key (worker stores,
	// served arrays, effect sequences, replica placement) with the job
	// id, isolating concurrent jobs end to end.
	Job int
	// WorkerRanks lists the world ranks acting as this job's workers, in
	// worker-index order.  Empty means the contiguous batch layout
	// 1..Workers.  A pool snapshots its live membership here at
	// admission, so jobs admitted after a rank join can include the
	// newcomer while running jobs keep their original group.
	WorkerRanks []int
	// ServerRanks lists the world ranks acting as I/O servers for this
	// job.  Empty means the contiguous batch layout
	// Workers+1..Workers+Servers.
	ServerRanks []int
	// Gate, when non-nil, arbitrates chunk dispatch between concurrent
	// jobs (see ChunkGate).  Nil means unconstrained guided
	// self-scheduling, the batch behavior.
	Gate ChunkGate
	// Cancel, when non-nil, cancels the run cooperatively once it is
	// closed: the master stops dispatching pardo iterations (every chunk
	// request is answered empty and iterations reclaimed from dead
	// workers are dropped), so the program fast-forwards through its
	// remaining phases and the normal shutdown protocol retires the
	// run's tag window, block namespaces, and server-side state exactly
	// as on completion.  The run then reports ErrJobCanceled; any partial
	// results are discarded.  This is the mechanism behind `sial serve`
	// job deadlines and POST /jobs/{id}/cancel.
	Cancel <-chan struct{}
	// CkptInterval enables automatic consistent job snapshots
	// (snapshot.go): the master captures a restartable checkpoint at
	// every sealed sync round and every CkptInterval completed pardo
	// chunks (when the open pardos are pure).  Requires Recover — the
	// snapshot consistency points are the recovery protocol's
	// master-mediated sync rounds.  0 disables checkpointing.
	CkptInterval int
	// CkptKeep is the snapshot retention depth (default 2): older epochs
	// are garbage-collected after each successful snapshot, and a
	// corrupted latest epoch falls back to the one before it on resume.
	CkptKeep int
	// CkptName names the snapshot directory <scratch>/ckpt/<CkptName>.
	// A restarted run resumes only from snapshots written under the same
	// name (default "job"; sial serve uses the stable per-job id).
	CkptName string
	// Resume, with CkptInterval set, loads the newest valid snapshot
	// under CkptName at startup and resumes from it: servers are
	// rehydrated (worker/server counts may differ from the snapshotting
	// run), workers jump to the recorded program counter, and completed
	// pardo iterations are skipped.  Without Resume any existing
	// snapshots under CkptName are cleared first.
	Resume bool
	// Stop, when non-nil and closed, requests a checkpoint-then-stop:
	// the master takes one final snapshot at the next consistency point
	// and then cancels the run (ErrJobCanceled).  This is the drain path
	// of sial serve — the requeued job resumes from that snapshot after
	// restart.  Without checkpointing it behaves exactly like Cancel.
	Stop <-chan struct{}
	// OnSnapshot, when non-nil, is called after every completed snapshot
	// (from the master goroutine; keep it fast).
	OnSnapshot func(SnapshotInfo)
	// OnResume, when non-nil, is called once if the run resumed from a
	// snapshot.
	OnResume func(ResumeInfo)
}

func (c *Config) fill() error {
	if c.Workers < 1 {
		return fmt.Errorf("sip: Workers = %d, need >= 1", c.Workers)
	}
	if c.Servers < 0 {
		return fmt.Errorf("sip: Servers = %d, need >= 0", c.Servers)
	}
	if c.Seg.Default == 0 {
		c.Seg = bytecode.DefaultSegConfig(4)
	}
	if c.CacheBlocks == 0 {
		c.CacheBlocks = 1024
	}
	if c.ServerCacheBlocks == 0 {
		c.ServerCacheBlocks = 1024
	}
	if c.ServerCacheBlocks < 1 {
		// A server must be able to pin at least the block it is working
		// on; smaller values would make insert evict its own entry.
		c.ServerCacheBlocks = 1
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Replicas < 1 {
		return fmt.Errorf("sip: Replicas = %d, need >= 1", c.Replicas)
	}
	if c.Replicas > 1 && c.Replicas > c.Servers {
		return fmt.Errorf("sip: Replicas = %d exceeds Servers = %d", c.Replicas, c.Servers)
	}
	if c.ObsInterval <= 0 {
		c.ObsInterval = 500 * time.Millisecond
	}
	if c.RecvRetries == 0 {
		c.RecvRetries = 2
	}
	if c.RecvRetries < 0 {
		c.RecvRetries = 0
	}
	if c.Output == nil {
		c.Output = os.Stdout
	}
	if c.Integrals == nil {
		c.Integrals = DefaultIntegrals
	}
	if c.Job < 0 {
		return fmt.Errorf("sip: Job = %d, need >= 0", c.Job)
	}
	if len(c.WorkerRanks) != 0 && len(c.WorkerRanks) != c.Workers {
		return fmt.Errorf("sip: WorkerRanks lists %d ranks for %d workers", len(c.WorkerRanks), c.Workers)
	}
	if len(c.ServerRanks) != 0 && len(c.ServerRanks) != c.Servers {
		return fmt.Errorf("sip: ServerRanks lists %d ranks for %d servers", len(c.ServerRanks), c.Servers)
	}
	if c.CkptInterval < 0 {
		return fmt.Errorf("sip: CkptInterval = %d, need >= 0", c.CkptInterval)
	}
	if c.CkptInterval > 0 {
		if !c.Recover {
			return fmt.Errorf("sip: CkptInterval requires Recover (snapshots ride the recovery sync protocol)")
		}
		if c.CkptKeep <= 0 {
			c.CkptKeep = 2
		}
		if c.CkptName == "" {
			c.CkptName = "job"
		}
	}
	if c.Resume && c.CkptInterval == 0 {
		return fmt.Errorf("sip: Resume requires CkptInterval > 0")
	}
	return nil
}

// ArrayBlock is one gathered block of a distributed or served array.
type ArrayBlock struct {
	Ord  int // block ordinal within the array shape
	Data []float64
}

// Result reports the outcome of a SIP run.
type Result struct {
	// Scalars holds final scalar values (from worker 1; collectives
	// make them identical across workers).
	Scalars map[string]float64
	// Arrays holds gathered distributed arrays (GatherArrays only).
	Arrays map[string][]ArrayBlock
	// Served holds gathered served arrays (GatherArrays only).
	Served map[string][]ArrayBlock
	// Profile aggregates per-instruction timing and wait statistics.
	Profile *Profile
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// runtime is the state shared (read-only after construction) by all
// ranks of one SIP run.
type runtime struct {
	cfg     Config
	prog    *bytecode.Program
	layout  *bytecode.Layout
	world   *mpi.World
	workers int
	servers int

	// job and tagBase stride this run's message tags inside a shared
	// pool world; both are zero on the batch path (see jobTagStride).
	job     int
	tagBase int

	// pooled marks a run multiplexed over a shared pool world.  Pool
	// ranks are in-process goroutines that never die silently — real
	// deaths arrive as explicit World.Evict calls (Pool.Kill, liveness)
	// — so silence-based failure diagnosis is disabled: a rank that is
	// merely slow (wedged on another job's lost block, parked by the
	// fairness gate) must not be evicted from, or fail, the world every
	// tenant shares.
	pooled bool

	// workerList and serverList map worker/server indexes to world
	// ranks.  On the batch path they are the contiguous 1..W and
	// W+1..W+S layouts; a pool snapshots its (possibly grown) live
	// membership here per job.
	workerList []int
	serverList []int

	workerGroup mpi.Group // workers only: barriers, collectives
	scratch     string

	tracer  *obs.Tracer   // nil when span tracing is disabled
	metrics *obs.Registry // nil when metrics are disabled

	outMu sync.Mutex
}

// tag offsets a base message tag into this run's job tag space.
func (rt *runtime) tag(t int) int { return rt.tagBase + t }

// cancelRequested reports whether the run's cancel channel has fired.
// It never blocks; a run without a cancel channel is never canceled.
func (rt *runtime) cancelRequested() bool {
	if rt.cfg.Cancel == nil {
		return false
	}
	select {
	case <-rt.cfg.Cancel:
		return true
	default:
		return false
	}
}

// initRanks fills job/tagBase/workerList/serverList from the config.
func (rt *runtime) initRanks() {
	rt.job = rt.cfg.Job
	rt.tagBase = rt.job * jobTagStride
	if len(rt.cfg.WorkerRanks) == rt.workers && rt.workers > 0 {
		rt.workerList = append([]int(nil), rt.cfg.WorkerRanks...)
	} else {
		rt.workerList = make([]int, rt.workers)
		for i := range rt.workerList {
			rt.workerList[i] = 1 + i
		}
	}
	if len(rt.cfg.ServerRanks) == rt.servers && rt.servers > 0 {
		rt.serverList = append([]int(nil), rt.cfg.ServerRanks...)
	} else {
		rt.serverList = make([]int, rt.servers)
		for i := range rt.serverList {
			rt.serverList[i] = 1 + rt.workers + i
		}
	}
}

// firstWorker returns the lowest-indexed worker's world rank (the rank
// that executes print statements and reports scalars).
func (rt *runtime) firstWorker() int { return rt.workerList[0] }

// workerIndexOf returns the 0-based worker index of a world rank, or -1.
func (rt *runtime) workerIndexOf(rank int) int {
	for i, r := range rt.workerList {
		if r == rank {
			return i
		}
	}
	return -1
}

// isServerRank reports whether a world rank is one of this job's I/O
// servers.
func (rt *runtime) isServerRank(rank int) bool {
	for _, r := range rt.serverList {
		if r == rank {
			return true
		}
	}
	return false
}

// DefaultIntegrals is the built-in synthetic two-electron integral
// generator: a deterministic, smooth, symmetric function of the global
// element indices with 1/(1+distance) decay, standing in for the real
// integrals the paper computes on demand (§V-B).
func DefaultIntegrals(arr string, lo, hi []int) *block.Block {
	dims := make([]int, len(lo))
	for d := range lo {
		dims[d] = hi[d] - lo[d] + 1
	}
	b := block.New(dims...)
	idx := make([]int, len(dims))
	data := b.Data()
	for off := range data {
		// Decode off into a multi-index (row-major).
		rem := off
		for d := len(dims) - 1; d >= 0; d-- {
			idx[d] = rem%dims[d] + lo[d]
			rem /= dims[d]
		}
		var spread, center float64
		for _, v := range idx {
			center += float64(v)
		}
		center /= float64(len(idx))
		for _, v := range idx {
			dv := float64(v) - center
			spread += dv * dv
		}
		data[off] = 1.0 / (1.0 + spread + 0.1*center)
	}
	return b
}

// PlacementFunc maps (array id, block ordinal, worker count) to the
// 0-based index of the worker that homes the block.
type PlacementFunc func(arr, ord, workers int) int

// HashPlacement is the default static strategy: a multiplicative hash
// spreading blocks without regard to locality, which "works well in
// practice" because access patterns are irregular and communication is
// overlapped anyway (paper §V-B).
func HashPlacement(arr, ord, workers int) int {
	return (arr*2654435761 + ord) % workers
}

// RoundRobinPlacement deals the blocks of each array out cyclically.
func RoundRobinPlacement(arr, ord, workers int) int {
	return ord % workers
}

// BlockedPlacement gives each worker a contiguous range of ordinals per
// array (requires knowing the block count, so it closes over the
// layout; see NewBlockedPlacement).
func NewBlockedPlacement(blocksOf func(arr int) int) PlacementFunc {
	return func(arr, ord, workers int) int {
		n := blocksOf(arr)
		if n <= 0 {
			return 0
		}
		w := ord * workers / n
		if w >= workers {
			w = workers - 1
		}
		return w
	}
}

// workerRanks returns the world ranks of all workers (the batch layout
// 1..W, or the job's membership snapshot in a pool), the member list of
// the worker collective group.
func (rt *runtime) workerRanks() []int {
	return append([]int(nil), rt.workerList...)
}

// criticalRanks returns the ranks whose death recovery cannot survive:
// the master (sole scheduler) and — with Replicas == 1 — the I/O
// servers (then the sole holders of served-array state).  With
// Replicas > 1 every served block lives on several servers, so server
// ranks become evictable like workers.
func (rt *runtime) criticalRanks() []int {
	ranks := []int{0}
	if rt.cfg.Replicas <= 1 {
		ranks = append(ranks, rt.serverList...)
	}
	return ranks
}

// serversEvictable reports whether I/O-server deaths are survivable in
// this run: recovery is on and every served block has backup replicas.
func (rt *runtime) serversEvictable() bool {
	return rt.cfg.Recover && rt.cfg.Replicas > 1
}

// homeWorker returns the world rank of the worker that owns block ord of
// array arr.
func (rt *runtime) homeWorker(arr, ord int) int {
	place := rt.cfg.Placement
	if place == nil {
		place = HashPlacement
	}
	w := place(arr, ord, rt.workers)
	if w < 0 || w >= rt.workers {
		panic(fmt.Sprintf("sip: placement returned worker %d out of range [0,%d)", w, rt.workers))
	}
	return rt.workerList[w]
}

// homeServer returns the world rank of the I/O server that owns block
// ord of served array arr.  The job id is folded into the hash so
// concurrent jobs spread their load differently; job 0 reproduces the
// historical placement exactly.
func (rt *runtime) homeServer(arr, ord int) int {
	if rt.servers == 0 {
		panic(fmt.Sprintf("sip: array %s is served but no I/O servers configured", rt.prog.Arrays[arr].Name))
	}
	return homeServerOf(rt.job, arr, ord, rt.serverList)
}

// Run compiles nothing: it executes an already compiled program under the
// given configuration and returns the result.
func Run(prog *bytecode.Program, cfg Config) (*Result, error) {
	started := time.Now()
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	layout, err := prog.Resolve(cfg.Params, cfg.Seg)
	if err != nil {
		return nil, err
	}
	scratch := cfg.ScratchDir
	if scratch == "" {
		dir, err := os.MkdirTemp("", "sip-scratch-")
		if err != nil {
			return nil, fmt.Errorf("sip: scratch dir: %w", err)
		}
		defer os.RemoveAll(dir)
		scratch = dir
	}

	nRanks := 1 + cfg.Workers + cfg.Servers
	rt := &runtime{
		cfg:     cfg,
		prog:    prog,
		layout:  layout,
		world:   mpi.NewWorld(nRanks),
		workers: cfg.Workers,
		servers: cfg.Servers,
		scratch: scratch,
		tracer:  cfg.Tracer,
		metrics: cfg.Metrics,
	}
	rt.initRanks()
	if cfg.Recover {
		rt.world.SetRecover(rt.criticalRanks()...)
	}
	rt.workerGroup = rt.world.Comm(rt.firstWorker()).GroupOf(rt.workerRanks()...)
	if cfg.Metrics != nil {
		rt.world.SetObserver(newMPIStats(cfg.Metrics, nRanks))
	}

	m := newMaster(rt)
	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		workers[i] = newWorker(rt, rt.workerList[i])
	}
	servers := make([]*ioServer, cfg.Servers)
	for i := range servers {
		servers[i] = newIOServer(rt, rt.serverList[i])
	}

	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(2)
		go func(i int, w *worker) {
			defer wg.Done()
			errs[i] = w.run()
		}(i, w)
		go func(w *worker) {
			defer wg.Done()
			w.serviceLoop()
		}(w)
	}
	srvErrs := make([]error, cfg.Servers)
	for i, s := range servers {
		wg.Add(1)
		go func(i int, s *ioServer) {
			defer wg.Done()
			srvErrs[i] = s.run()
		}(i, s)
	}
	res, masterErr := m.run()
	wg.Wait()

	// Prefer a rank's own failure over the secondary "aborted after
	// peer failure" errors the poison fans out to the other ranks.
	// Errors from evicted ranks are not failures of the run: the world
	// deliberately completed degraded without them, and the eviction is
	// already part of the master's diagnosis.
	var abortErr error
	scan := func(rank int, err error) error {
		switch {
		case err == nil:
		case rt.world.IsEvicted(rank):
		case errors.Is(err, mpi.ErrAborted):
			if abortErr == nil {
				abortErr = err
			}
		default:
			return err
		}
		return nil
	}
	for i, err := range errs {
		if err := scan(rt.workerList[i], err); err != nil {
			return nil, err
		}
	}
	for i, err := range srvErrs {
		if err := scan(rt.serverList[i], err); err != nil {
			return nil, err
		}
	}
	if masterErr != nil {
		return nil, masterErr
	}
	if abortErr != nil {
		return nil, abortErr
	}

	// Scalars were collected by the master from worker 1's doneMsg;
	// attach the merged profiles.
	res.Profile = mergeProfiles(workers, servers)
	if cfg.Metrics != nil {
		foldRunMetrics(cfg.Metrics, workers, servers)
		res.Profile.Metrics = cfg.Metrics.Snapshot()
	}
	res.Elapsed = time.Since(started)
	return res, nil
}

// RunSource is a convenience wrapper: parse, check, compile, run.
func RunSource(src string, cfg Config) (*Result, error) {
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return nil, err
	}
	return Run(prog, cfg)
}
