package sip

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestObsReportMsgWireRoundTrip(t *testing.T) {
	snap := &obs.Snapshot{
		Counters: map[string]int64{"sip.worker.fetches": 12, "obs.trace.dropped": 3},
		Gauges:   map[string]obs.GaugeValue{"mpi.qdepth.rank1": {Value: 2, Max: 7}},
		Hists: map[string]obs.HistValue{"sip.worker.wait_ns": {
			Count: 5, Sum: 12345, P50: 100, P90: 4000, P99: 8000,
			Buckets: []int64{0, 1, 2, 0, 2},
		}},
	}
	var ev0, ev1 obs.Event
	ev0.Name, ev0.Cat, ev0.TS, ev0.Dur = "fetch_chunk", obs.CatChunk, 10, 40
	ev0.Flow, ev0.FlowDir = msgFlowID(0, 1, tagChunkRep), obs.FlowIn
	ev0.NArg = 2
	ev0.Args[0] = obs.Arg{Key: "pardo", Val: "1"}
	ev0.Args[1] = obs.Arg{Key: "iters", Val: "8"}
	ev1.Name, ev1.Cat, ev1.TS = "worker_done", obs.CatChunk, 99
	want := obsReportMsg{
		origin: 2, seq: 4, final: true, wallUs: 1722222222000000,
		snap: snap,
		tracks: []obs.TrackSegment{{
			Rank: 2, Tid: 1, Proc: "worker 2", Name: "service",
			Dropped: 1, Events: []obs.Event{ev0, ev1},
		}},
	}
	got := sipRoundTrip(t, want).(obsReportMsg)
	if got.origin != want.origin || got.seq != want.seq || got.final != want.final || got.wallUs != want.wallUs {
		t.Fatalf("header mismatch: %#v", got)
	}
	if !reflect.DeepEqual(got.snap, want.snap) {
		t.Fatalf("snapshot mismatch:\n got %#v\nwant %#v", got.snap, want.snap)
	}
	if !reflect.DeepEqual(got.tracks, want.tracks) {
		t.Fatalf("tracks mismatch:\n got %#v\nwant %#v", got.tracks, want.tracks)
	}

	// A minimal report (tracing off) survives too.
	empty := sipRoundTrip(t, obsReportMsg{origin: 3, seq: 1}).(obsReportMsg)
	if empty.origin != 3 || empty.snap != nil || empty.tracks != nil {
		t.Fatalf("empty report round trip: %#v", empty)
	}
}

// TestDistributedObsPlane runs a full distributed program with the
// observability plane on and checks the master's aggregator ends up
// with a final report from every non-master rank, a merged snapshot
// whose counters include worker and server work, and merged trace
// segments from every rank.
func TestDistributedObsPlane(t *testing.T) {
	var out bytes.Buffer
	base := distConfig(&out)
	n := 1 + base.Workers + base.Servers
	mk := routerWorldMaker(t, n)
	tracers := make([]*obs.Tracer, n)
	regs := make([]*obs.Registry, n)
	for r := 0; r < n; r++ {
		tracers[r] = obs.NewTracer(obs.TracerConfig{})
		regs[r] = obs.NewRegistry()
	}
	agg := obs.NewAggregator(0, "master", tracers[0], regs[0])
	_, errs := runRanksOver(t, distProgram, mk, func(rank int) Config {
		cfg := distConfig(&out)
		cfg.ObsShip = true
		cfg.Tracer = tracers[rank]
		cfg.Metrics = regs[rank]
		if rank == 0 {
			cfg.ObsAgg = agg
		}
		return cfg
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if got := agg.FinalCount(); got != n-1 {
		t.Fatalf("final reports: got %d, want %d (reported %v)", got, n-1, agg.ReportedRanks())
	}
	snap := agg.MergedSnapshot()
	if snap.Counters["sip.worker.fetches"] == 0 {
		t.Errorf("merged snapshot missing worker fetches: %v", snap.Counters)
	}
	if snap.Counters["sip.master.chunks"] == 0 {
		t.Errorf("merged snapshot missing master chunks: %v", snap.Counters)
	}
	var trace bytes.Buffer
	if err := agg.WriteMergedChrome(&trace); err != nil {
		t.Fatal(err)
	}
	for rank := 1; rank < n; rank++ {
		want := fmt.Sprintf(`"pid":%d`, rank)
		if !strings.Contains(trace.String(), want) {
			t.Errorf("merged trace has no events for rank %d", rank)
		}
	}
	if !strings.Contains(trace.String(), `"ph":"s"`) || !strings.Contains(trace.String(), `"ph":"f"`) {
		t.Errorf("merged trace has no flow event pair")
	}
}
