package sip

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/compiler"
)

// serialE runs recoverDrill serially (fresh world, no pool) and returns
// the reference energy for the given problem size.
func serialE(t *testing.T, n int) float64 {
	t.Helper()
	var out bytes.Buffer
	res, err := RunSource(recoverDrill, Config{
		Workers: 2,
		Servers: 1,
		Params:  map[string]int{"n": n},
		Seg:     bytecode.DefaultSegConfig(3),
		Output:  &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := res.Scalars["e"]
	if e == 0 {
		t.Fatalf("serial reference for n=%d computed e = 0; drill is vacuous", n)
	}
	return e
}

func poolProg(t *testing.T) *bytecode.Program {
	t.Helper()
	prog, err := compiler.CompileSource(recoverDrill)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestPoolSingleJob: one job through the pool matches the serial batch
// answer — the strided tag plane and job-keyed block namespace are
// invisible to a lone tenant.
func TestPoolSingleJob(t *testing.T) {
	want := serialE(t, 12)
	p, err := NewPool(PoolConfig{Workers: 2, Servers: 1, Output: &bytes.Buffer{}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var out bytes.Buffer
	res, err := p.RunJob(JobSpec{
		Prog:   poolProg(t),
		Params: map[string]int{"n": 12},
		Seg:    bytecode.DefaultSegConfig(3),
		Output: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalars["e"]; !closeE(got, want) {
		t.Errorf("pool e = %.15g, want %.15g", got, want)
	}
}

// TestPoolConcurrentJobsIsolated: jobs of three different problem sizes
// run overlapped on the same pool; every job's answer must match its own
// serial reference.  Wrong-namespace traffic (one tenant reading
// another's blocks, acks, or dedup ledger) shows up as a wrong energy.
func TestPoolConcurrentJobsIsolated(t *testing.T) {
	sizes := []int{6, 9, 12}
	want := map[int]float64{}
	for _, n := range sizes {
		want[n] = serialE(t, n)
	}
	p, err := NewPool(PoolConfig{Workers: 3, Servers: 2, Output: &bytes.Buffer{}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	prog := poolProg(t)

	const jobs = 9
	errs := make([]error, jobs)
	got := make([]float64, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := sizes[i%len(sizes)]
			var out bytes.Buffer
			res, err := p.RunJob(JobSpec{
				Prog:   prog,
				Params: map[string]int{"n": n},
				Seg:    bytecode.DefaultSegConfig(3),
				Output: &out,
			})
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = res.Scalars["e"]
		}(i)
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Errorf("job %d failed: %v", i, errs[i])
			continue
		}
		n := sizes[i%len(sizes)]
		if !closeE(got[i], want[n]) {
			t.Errorf("job %d (n=%d): e = %.15g, want %.15g", i, n, got[i], want[n])
		}
	}
}

// TestPoolKillAndJoin: a recovering, replicated pool survives a worker
// kill while jobs are in flight, and a joined spare carries jobs
// admitted afterwards.  Every job still matches its serial reference.
func TestPoolKillAndJoin(t *testing.T) {
	want := serialE(t, 12)
	p, err := NewPool(PoolConfig{
		Workers:  3,
		Servers:  2,
		Spares:   1,
		Replicas: 2,
		Recover:  true,
		Output:   &bytes.Buffer{},
		// Recovery is driven by receive deadlines: a master only
		// diagnoses (or notices) a dead worker when a blocking receive
		// times out.
		RecvTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	prog := poolProg(t)
	run := func() (float64, error) {
		var out bytes.Buffer
		res, err := p.RunJob(JobSpec{
			Prog:   prog,
			Params: map[string]int{"n": 12},
			Seg:    bytecode.DefaultSegConfig(3),
			Output: &out,
		})
		if err != nil {
			return 0, err
		}
		return res.Scalars["e"], nil
	}

	const jobs = 4
	errs := make([]error, jobs)
	got := make([]float64, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = run()
		}(i)
	}
	// Kill a worker while the first wave is in flight.
	time.Sleep(20 * time.Millisecond)
	if err := p.Kill(2, "test kill"); err != nil {
		t.Errorf("kill: %v", err)
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Errorf("job %d failed across kill: %v", i, errs[i])
		} else if !closeE(got[i], want) {
			t.Errorf("job %d across kill: e = %.15g, want %.15g", i, got[i], want)
		}
	}
	if live := p.Workers(); len(live) != 2 {
		t.Fatalf("live workers after kill = %v, want 2", live)
	}

	// Join the spare; jobs admitted now schedule onto it.
	rank, err := p.Join()
	if err != nil {
		t.Fatal(err)
	}
	if live := p.Workers(); len(live) != 3 {
		t.Fatalf("live workers after join = %v, want 3", live)
	}
	e, err := run()
	if err != nil {
		t.Fatalf("job after join (rank %d): %v", rank, err)
	}
	if !closeE(e, want) {
		t.Errorf("job after join: e = %.15g, want %.15g", e, want)
	}
}

// TestPoolRejectsAfterClose: RunJob, Kill, and Join all fail cleanly on
// a closed pool.
func TestPoolRejectsAfterClose(t *testing.T) {
	p, err := NewPool(PoolConfig{Workers: 1, Output: &bytes.Buffer{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := p.RunJob(JobSpec{Prog: poolProg(t)}); err == nil {
		t.Error("RunJob on closed pool succeeded")
	}
	if err := p.Kill(1, "x"); err == nil {
		t.Error("Kill on closed pool succeeded")
	}
	if _, err := p.Join(); err == nil {
		t.Error("Join on closed pool succeeded")
	}
}

// closeE compares energies to the tolerance the chaos tests use: fold
// order across workers (and recovery replays) legitimately perturbs the
// low bits.
func closeE(got, want float64) bool {
	d := got - want
	return d > -1e-10 && d < 1e-10
}

var _ = fmt.Sprintf // keep fmt for debug edits
