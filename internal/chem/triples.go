package chem

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/bytecode"
	"repro/internal/sip"
)

// TriplesProgram generates a perturbative-triples-style SIAL program: a
// rank-6 intermediate W(I,J,K,A,B,C) is formed as the outer product of a
// doubles block with an integral block, divided by the triples
// orbital-energy denominator, and contracted into the pseudo-energy
//
//	E(T) = sum_{ijkabc} W² / (ei + ej + ek - ea - eb - ec).
//
// Rank-6 intermediates are exactly the situation the paper's subindex
// machinery exists for (§IV-E: "arrays with too many dimensions");
// at test scale the segment size keeps the seg⁶ blocks small enough to
// form directly.  Parameters: no (occupied), nv (virtual).
func TriplesProgram() string {
	return `
sial triples
param no = 2
param nv = 3
moindex I = 1, no
moindex J = 1, no
moindex K = 1, no
moaindex A = 1, nv
moaindex B = 1, nv
moaindex C = 1, nv
distributed T2(I,J,A,B)
temp x(K,C)
temp w(I,J,K,A,B,C)
temp wd(I,J,K,A,B,C)
scalar et
scalar iv
scalar jv
scalar kv
scalar av
scalar bv
scalar cv

pardo I, J, K, A, B, C
  get T2(I,J,A,B)
  compute_integrals x(K,C)
  w(I,J,K,A,B,C) = T2(I,J,A,B) * x(K,C)
  wd(I,J,K,A,B,C) = w(I,J,K,A,B,C)
  iv = I
  jv = J
  kv = K
  av = A
  bv = B
  cv = C
  execute triples_denom wd(I,J,K,A,B,C), iv, jv, kv, av, bv, cv
  et += dot(wd(I,J,K,A,B,C), w(I,J,K,A,B,C))
endpardo I, J, K, A, B, C
collective et
endsial
`
}

// TriplesSuper registers the triples denominator super instruction: it
// divides each element of the rank-6 block by
// ei + ej + ek - ea - eb - ec, recovering element indices from the
// current segment numbers carried in the scalars.
func TriplesSuper() map[string]sip.SuperFunc {
	return map[string]sip.SuperFunc{
		"triples_denom": func(ctx *sip.ExecCtx, blocks []*block.Block, scalars []*float64) error {
			if len(blocks) != 1 || len(scalars) != 6 {
				return fmt.Errorf("triples_denom: want 1 block and 6 scalars, got %d/%d",
					len(blocks), len(scalars))
			}
			names := []string{"I", "J", "K", "A", "B", "C"}
			los := make([]int, 6)
			his := make([]int, 6)
			for d, name := range names {
				id := ctx.Layout.Prog.IndexID(name)
				los[d], his[d] = ctx.Layout.Indices[id].SegBounds(int(*scalars[d]))
			}
			b := blocks[0]
			dims := b.Dims()
			for d := range dims {
				if dims[d] != his[d]-los[d]+1 {
					return fmt.Errorf("triples_denom: block dims %v do not match segments", dims)
				}
			}
			data := b.Data()
			idx := make([]int, 6)
			for off := range data {
				rem := off
				for d := 5; d >= 0; d-- {
					idx[d] = rem%dims[d] + los[d]
					rem /= dims[d]
				}
				den := OccEps(idx[0]) + OccEps(idx[1]) + OccEps(idx[2]) -
					VirtEps(idx[3]) - VirtEps(idx[4]) - VirtEps(idx[5])
				data[off] /= den
			}
			return nil
		},
	}
}

// TriplesSIP runs the triples program on the SIP and returns E(T).
// t2Init supplies the doubles amplitudes; the x "integral" blocks come
// from the synthetic core Hamiltonian (2-index arrays in AOIntegrals).
func TriplesSIP(no, nv, workers, seg int, t2Init func(idx []int) float64) (float64, error) {
	cfg := sip.Config{
		Workers:   workers,
		Params:    map[string]int{"no": no, "nv": nv},
		Seg:       bytecode.DefaultSegConfig(seg),
		Integrals: AOIntegrals(),
		Super:     TriplesSuper(),
		Preset: map[string]sip.PresetFunc{
			"T2": presetFromElem(t2Init),
		},
	}
	res, err := sip.RunSource(TriplesProgram(), cfg)
	if err != nil {
		return 0, err
	}
	return res.Scalars["et"], nil
}

// TriplesReference evaluates the same pseudo-energy with serial loops.
func TriplesReference(no, nv int, t2Init func(idx []int) float64) float64 {
	var e float64
	for i := 1; i <= no; i++ {
		for j := 1; j <= no; j++ {
			for k := 1; k <= no; k++ {
				for a := 1; a <= nv; a++ {
					for b := 1; b <= nv; b++ {
						for c := 1; c <= nv; c++ {
							w := t2Init([]int{i, j, a, b}) * Hcore(k, c)
							den := OccEps(i) + OccEps(j) + OccEps(k) -
								VirtEps(a) - VirtEps(b) - VirtEps(c)
							e += w * w / den
						}
					}
				}
			}
		}
	}
	return e
}
