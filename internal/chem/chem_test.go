package chem

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bytecode"
	"repro/internal/compiler"
	"repro/internal/ga"
	"repro/internal/sip"
)

func TestERISymmetry(t *testing.T) {
	// Full 8-fold permutational symmetry of (pq|rs).
	f := func(p8, q8, r8, s8 uint8) bool {
		p, q, r, s := int(p8%30)+1, int(q8%30)+1, int(r8%30)+1, int(s8%30)+1
		v := ERI(p, q, r, s)
		perms := [][4]int{
			{q, p, r, s}, {p, q, s, r}, {q, p, s, r},
			{r, s, p, q}, {s, r, p, q}, {r, s, q, p}, {s, r, q, p},
		}
		for _, pm := range perms {
			if ERI(pm[0], pm[1], pm[2], pm[3]) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestERIDecay(t *testing.T) {
	near := ERI(5, 5, 5, 5)
	far := ERI(5, 5, 50, 50)
	if far >= near {
		t.Fatalf("ERI should decay: near=%g far=%g", near, far)
	}
	if near <= 0 {
		t.Fatalf("diagonal ERI should be positive, got %g", near)
	}
}

func TestHcoreSymmetric(t *testing.T) {
	if Hcore(3, 7) != Hcore(7, 3) {
		t.Fatal("Hcore must be symmetric")
	}
	if Hcore(3, 3) >= 0 {
		t.Fatal("diagonal Hcore should be negative (bound electrons)")
	}
}

func TestMoleculeCatalog(t *testing.T) {
	if len(Catalog) != 6 {
		t.Fatalf("catalog size %d", len(Catalog))
	}
	for name, m := range Catalog {
		if m.Name != name {
			t.Errorf("catalog key %q != molecule name %q", name, m.Name)
		}
		if m.Basis <= m.Occupied || m.Occupied < 1 {
			t.Errorf("%s: implausible sizes n=%d N=%d", name, m.Basis, m.Occupied)
		}
		if m.Virtual() != m.Basis-m.Occupied {
			t.Errorf("%s: Virtual() wrong", name)
		}
	}
	if DiamondNano.Basis != 2944 {
		t.Fatal("diamond nanocrystal basis must be the paper's 2944")
	}
	s := Luciferin.Scaled(0.1)
	if s.Basis >= Luciferin.Basis || s.Occupied < 1 || s.Basis <= s.Occupied {
		t.Fatalf("Scaled: %+v", s)
	}
}

func TestOrbitalEnergies(t *testing.T) {
	// All MP2 denominators must be negative.
	if OccEps(100) >= 0 {
		t.Fatal("occupied energies must stay negative")
	}
	if VirtEps(1) <= 0 {
		t.Fatal("virtual energies must be positive")
	}
}

func tInitTest(idx []int) float64 {
	s := 0
	for d, v := range idx {
		s += (2*d + 1) * v
	}
	return float64(s%7)*0.5 - 1.5
}

func TestCCSDTermMatchesReference(t *testing.T) {
	const norb, nocc = 6, 2
	res, err := CCSDTermSIP(norb, nocc, 3, 2, tInitTest)
	if err != nil {
		t.Fatal(err)
	}
	want := CCSDTermReference(norb, nocc, tInitTest)
	got := denseR(t, norb, nocc, res)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-11 {
			t.Fatalf("R[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMP2SIPMatchesReference(t *testing.T) {
	const no, nv = 4, 6
	got, err := MP2SIP(no, nv, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := MP2Reference(no, nv)
	if math.Abs(got-want) > 1e-11*math.Abs(want) {
		t.Fatalf("MP2 SIP = %.14g, reference = %.14g", got, want)
	}
	if want >= 0 {
		t.Fatalf("MP2 correlation energy should be negative, got %g", want)
	}
}

func TestMP2GAMatchesReference(t *testing.T) {
	const no, nv = 4, 6
	c := ga.NewCluster(4, 0)
	got, err := MP2GA(c, no, nv)
	if err != nil {
		t.Fatal(err)
	}
	want := MP2Reference(no, nv)
	if math.Abs(got-want) > 1e-11*math.Abs(want) {
		t.Fatalf("MP2 GA = %.14g, reference = %.14g", got, want)
	}
}

func TestMP2GAOutOfMemory(t *testing.T) {
	// A tight per-core budget must fail with ErrNoMemory — the Fig 7
	// NWChem behaviour.
	c := ga.NewCluster(2, 1200*1024) // ~1.17 MiB/core, 1 MiB is buffers
	_, err := MP2GA(c, 16, 48)       // arrays: 2 * 16*48*16*48*8 B = 9 MiB
	var nomem *ga.ErrNoMemory
	if !errors.As(err, &nomem) {
		t.Fatalf("want ErrNoMemory, got %v", err)
	}
}

func TestFockBuildMatchesReference(t *testing.T) {
	const norb = 6
	density := func(idx []int) float64 {
		// Symmetric, diagonally dominant model density.
		d := math.Abs(float64(idx[0] - idx[1]))
		return 1.0 / (1.0 + d)
	}
	res, err := FockBuildSIP(norb, 3, 2, density)
	if err != nil {
		t.Fatal(err)
	}
	want := FockBuildReference(norb, density)
	// The SIAL program computes only blocks with M <= N; verify those.
	for _, ab := range res.Arrays["F"] {
		// Ordinal encodes (M,N) block of a norb x norb shape with seg 2.
		segs := (norb + 1) / 2
		mBlk := ab.Ord/segs + 1
		nBlk := ab.Ord%segs + 1
		if mBlk > nBlk {
			t.Fatalf("block (%d,%d) written despite where M <= N", mBlk, nBlk)
		}
		bm := 2
		if mBlk*2 > norb {
			bm = norb - (mBlk-1)*2
		}
		bn := 2
		if nBlk*2 > norb {
			bn = norb - (nBlk-1)*2
		}
		for x := 0; x < bm; x++ {
			for y := 0; y < bn; y++ {
				mEl := (mBlk-1)*2 + x + 1
				nEl := (nBlk-1)*2 + y + 1
				got := ab.Data[x*bn+y]
				w := want[(mEl-1)*norb+(nEl-1)]
				if math.Abs(got-w) > 1e-11 {
					t.Fatalf("F[%d,%d] = %g, want %g", mEl, nEl, got, w)
				}
			}
		}
	}
	if len(res.Arrays["F"]) == 0 {
		t.Fatal("no Fock blocks gathered")
	}
}

func TestCCSDEnergyMatchesReference(t *testing.T) {
	const norb, nocc, iters = 4, 2, 2
	got, err := CCSDEnergySIP(norb, nocc, iters, 3, 2, 2, tInitTest)
	if err != nil {
		t.Fatal(err)
	}
	want := CCSDEnergyReference(norb, nocc, iters, tInitTest)
	if math.Abs(got-want) > 1e-10*math.Abs(want) {
		t.Fatalf("CCSD energy = %.14g, reference = %.14g", got, want)
	}
}

// denseR assembles the gathered R blocks of the CCSD-term program into a
// flat dense array in (m,n,i,j) order.
func denseR(t *testing.T, norb, nocc int, res *sip.Result) []float64 {
	t.Helper()
	prog, err := compiler.CompileSource(CCSDTermProgram())
	if err != nil {
		t.Fatal(err)
	}
	layout, err := prog.Resolve(map[string]int{"norb": norb, "nocc": nocc}, bytecode.DefaultSegConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	shape := layout.Shapes[prog.ArrayID("R")]
	out := make([]float64, shape.NumElements())
	dims := []int{norb, norb, nocc, nocc}
	strides := []int{norb * nocc * nocc, nocc * nocc, nocc, 1}
	for _, ab := range res.Arrays["R"] {
		coord := shape.CoordOf(ab.Ord)
		lo, hi := shape.BlockBounds(coord)
		bdims := make([]int, 4)
		for d := range lo {
			bdims[d] = hi[d] - lo[d] + 1
		}
		idx := make([]int, 4)
		for off, v := range ab.Data {
			rem := off
			for d := 3; d >= 0; d-- {
				idx[d] = rem % bdims[d]
				rem /= bdims[d]
			}
			pos := 0
			for d := range idx {
				pos += (lo[d] - 1 + idx[d]) * strides[d]
			}
			out[pos] = v
		}
	}
	_ = dims
	return out
}
