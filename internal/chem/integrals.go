package chem

import (
	"math"

	"repro/internal/block"
	"repro/internal/sip"
)

// ERI is the synthetic two-electron repulsion integral (pq|rs) over
// global 1-based orbital indices.  It is deterministic, smooth, decays
// with index separation, and respects the full 8-fold permutational
// symmetry of real ERIs:
//
//	(pq|rs) = (qp|rs) = (pq|sr) = (qp|sr) = (rs|pq) = ...
func ERI(p, q, r, s int) float64 {
	hpq := pairFactor(p, q)
	hrs := pairFactor(r, s)
	// Coupling decays with the distance between pair "centers"; using
	// the centers keeps the (pq)<->(rs) and within-pair swaps exact.
	d := math.Abs(float64(p+q)-float64(r+s)) / 2
	return hpq * hrs / (1 + 0.2*d)
}

// pairFactor is symmetric in its arguments and decays with |p-q|.
func pairFactor(p, q int) float64 {
	return 1.0/(1.0+math.Abs(float64(p-q))) + 0.1/(1.0+float64(p+q))
}

// Hcore is the synthetic one-electron core Hamiltonian element.
func Hcore(p, q int) float64 {
	if p == q {
		return -2.0 - 1.0/float64(p)
	}
	return -0.5 / (1.0 + math.Abs(float64(p-q)))
}

// fillBlock fills a block whose element bounds are [lo, hi] per
// dimension using f over global indices.
func fillBlock(lo, hi []int, f func(idx []int) float64) *block.Block {
	dims := make([]int, len(lo))
	for d := range lo {
		dims[d] = hi[d] - lo[d] + 1
	}
	b := block.New(dims...)
	data := b.Data()
	idx := make([]int, len(dims))
	for off := range data {
		rem := off
		for d := len(dims) - 1; d >= 0; d-- {
			idx[d] = rem%dims[d] + lo[d]
			rem /= dims[d]
		}
		data[off] = f(idx)
	}
	return b
}

// AOIntegrals returns a sip.IntegralFunc computing AO-basis ERI blocks
// for any 4-index array (used by the CCSD-term and Fock-build
// programs, where compute_integrals arrays are indexed by AO indices).
func AOIntegrals() sip.IntegralFunc {
	return func(arr string, lo, hi []int) *block.Block {
		if len(lo) != 4 {
			return fillBlock(lo, hi, func(idx []int) float64 {
				// 2-index arrays get the core Hamiltonian.
				return Hcore(idx[0], idx[1])
			})
		}
		return fillBlock(lo, hi, func(idx []int) float64 {
			return ERI(idx[0], idx[1], idx[2], idx[3])
		})
	}
}

// MOIntegrals returns a sip.IntegralFunc for the MP2 program's MO-basis
// integrals: array "v" holds (ia|jb) and array "w" holds (ib|ja), with
// occupied indices 1..no and virtual indices offset by no.
func MOIntegrals(no int) sip.IntegralFunc {
	return func(arr string, lo, hi []int) *block.Block {
		switch arr {
		case "v": // v(I,A,J,B) = (ia|jb)
			return fillBlock(lo, hi, func(idx []int) float64 {
				return ERI(idx[0], idx[1]+no, idx[2], idx[3]+no)
			})
		case "w": // w(I,B,J,A) = (ib|ja)
			return fillBlock(lo, hi, func(idx []int) float64 {
				return ERI(idx[0], idx[1]+no, idx[2], idx[3]+no)
			})
		default:
			return fillBlock(lo, hi, func(idx []int) float64 {
				return ERI(idx[0], idx[1], idx[2], idx[3])
			})
		}
	}
}
