package chem

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/bytecode"
	"repro/internal/ga"
	"repro/internal/segment"
	"repro/internal/sip"
)

// MP2Super returns the user super instruction registry for the MP2
// program: "mp2_denom" divides each element of a T2 block by the MP2
// orbital-energy denominator.  The scalar arguments carry the current
// segment numbers of I, A, J, B; element bounds are recovered from the
// resolved layout.
func MP2Super() map[string]sip.SuperFunc {
	return map[string]sip.SuperFunc{
		"mp2_denom": func(ctx *sip.ExecCtx, blocks []*block.Block, scalars []*float64) error {
			if len(blocks) != 1 || len(scalars) != 4 {
				return fmt.Errorf("mp2_denom: want 1 block and 4 scalars, got %d/%d", len(blocks), len(scalars))
			}
			layout := ctx.Layout
			segOf := func(name string, seg int) (lo, hi int) {
				id := layout.Prog.IndexID(name)
				return layout.Indices[id].SegBounds(seg)
			}
			iLo, iHi := segOf("I", int(*scalars[0]))
			aLo, aHi := segOf("A", int(*scalars[1]))
			jLo, jHi := segOf("J", int(*scalars[2]))
			bLo, bHi := segOf("B", int(*scalars[3]))
			b := blocks[0]
			data := b.Data()
			dims := b.Dims()
			if dims[0] != iHi-iLo+1 || dims[1] != aHi-aLo+1 || dims[2] != jHi-jLo+1 || dims[3] != bHi-bLo+1 {
				return fmt.Errorf("mp2_denom: block dims %v do not match segments", dims)
			}
			off := 0
			for i := iLo; i <= iHi; i++ {
				for a := aLo; a <= aHi; a++ {
					for j := jLo; j <= jHi; j++ {
						for bb := bLo; bb <= bHi; bb++ {
							data[off] /= OccEps(i) + OccEps(j) - VirtEps(a) - VirtEps(bb)
							off++
						}
					}
				}
			}
			return nil
		},
	}
}

// MP2SIP computes the model MP2 correlation energy for a molecule with
// no occupied and nv virtual orbitals on the SIP.
func MP2SIP(no, nv, workers, seg int) (float64, error) {
	cfg := sip.Config{
		Workers:   workers,
		Params:    map[string]int{"no": no, "nv": nv},
		Seg:       bytecode.DefaultSegConfig(seg),
		Integrals: MOIntegrals(no),
		Super:     MP2Super(),
	}
	res, err := sip.RunSource(MP2EnergyProgram(), cfg)
	if err != nil {
		return 0, err
	}
	return res.Scalars["emp2"], nil
}

// MP2Reference computes the same energy with plain serial loops.
func MP2Reference(no, nv int) float64 {
	var e float64
	for i := 1; i <= no; i++ {
		for a := 1; a <= nv; a++ {
			for j := 1; j <= no; j++ {
				for b := 1; b <= nv; b++ {
					v := ERI(i, a+no, j, b+no)
					w := ERI(i, b+no, j, a+no)
					d := OccEps(i) + OccEps(j) - VirtEps(a) - VirtEps(b)
					e += v * (2*v - w) / d
				}
			}
		}
	}
	return e
}

// MP2GA computes the same energy the NWChem/Global-Arrays way: the full
// (ia|jb) and (ib|ja) integral arrays are allocated as global arrays up
// front (the rigid data organization the paper contrasts with the SIA),
// filled, and then consumed patch by patch.  With a per-core memory
// budget too small for the full arrays, Create fails with *ga.ErrNoMemory
// — reproducing NWChem's behaviour in Figure 7, where runs at 1 GB/core
// never completed.
func MP2GA(c *ga.Cluster, no, nv int) (float64, error) {
	viajb, err := c.Create("viajb", no, nv, no, nv)
	if err != nil {
		return 0, err
	}
	defer c.Destroy(viajb)
	wibja, err := c.Create("wibja", no, nv, no, nv)
	if err != nil {
		return 0, err
	}
	defer c.Destroy(wibja)

	// Fill phase: each "process" writes a patch of rows.
	row := make([]float64, nv*no*nv)
	for i := 1; i <= no; i++ {
		off := 0
		for a := 1; a <= nv; a++ {
			for j := 1; j <= no; j++ {
				for b := 1; b <= nv; b++ {
					row[off] = ERI(i, a+no, j, b+no)
					off++
				}
			}
		}
		if err := viajb.Put([]int{i - 1, 0, 0, 0}, []int{i - 1, nv - 1, no - 1, nv - 1}, row); err != nil {
			return 0, err
		}
		off = 0
		for a := 1; a <= nv; a++ {
			for j := 1; j <= no; j++ {
				for b := 1; b <= nv; b++ {
					row[off] = ERI(i, b+no, j, a+no)
					off++
				}
			}
		}
		if err := wibja.Put([]int{i - 1, 0, 0, 0}, []int{i - 1, nv - 1, no - 1, nv - 1}, row); err != nil {
			return 0, err
		}
	}
	c.Sync()

	// Energy phase: fetch patches and reduce element by element — the
	// element-level style the paper attributes to GA programs.
	var e float64
	vbuf := make([]float64, nv*no*nv)
	wbuf := make([]float64, nv*no*nv)
	for i := 1; i <= no; i++ {
		if err := viajb.Get([]int{i - 1, 0, 0, 0}, []int{i - 1, nv - 1, no - 1, nv - 1}, vbuf); err != nil {
			return 0, err
		}
		if err := wibja.Get([]int{i - 1, 0, 0, 0}, []int{i - 1, nv - 1, no - 1, nv - 1}, wbuf); err != nil {
			return 0, err
		}
		off := 0
		for a := 1; a <= nv; a++ {
			for j := 1; j <= no; j++ {
				for b := 1; b <= nv; b++ {
					d := OccEps(i) + OccEps(j) - VirtEps(a) - VirtEps(b)
					e += vbuf[off] * (2*vbuf[off] - wbuf[off]) / d
					off++
				}
			}
		}
	}
	return e, nil
}

// CCSDTermSIP runs the paper's §IV-D contraction on the SIP with T
// preset from the given element function and returns the gathered R.
func CCSDTermSIP(norb, nocc, workers, seg int, tInit func(idx []int) float64) (*sip.Result, error) {
	cfg := sip.Config{
		Workers:      workers,
		Params:       map[string]int{"norb": norb, "nocc": nocc},
		Seg:          bytecode.DefaultSegConfig(seg),
		Integrals:    AOIntegrals(),
		GatherArrays: true,
		Preset: map[string]sip.PresetFunc{
			"T": presetFromElem(tInit),
		},
	}
	return sip.RunSource(CCSDTermProgram(), cfg)
}

// CCSDTermReference evaluates equation (2) of the paper with serial
// loops: R(m,n,i,j) = sum_{l,s} (mn|ls) * T(l,s,i,j).
func CCSDTermReference(norb, nocc int, tInit func(idx []int) float64) []float64 {
	out := make([]float64, norb*norb*nocc*nocc)
	pos := 0
	for m := 1; m <= norb; m++ {
		for n := 1; n <= norb; n++ {
			for i := 1; i <= nocc; i++ {
				for j := 1; j <= nocc; j++ {
					var sum float64
					for l := 1; l <= norb; l++ {
						for s := 1; s <= norb; s++ {
							sum += ERI(m, n, l, s) * tInit([]int{l, s, i, j})
						}
					}
					out[pos] = sum
					pos++
				}
			}
		}
	}
	return out
}

// FockBuildSIP assembles the Fock matrix on the SIP from a density
// matrix given element-wise and returns the result (upper triangle of
// blocks only, per the where clause).
func FockBuildSIP(norb, workers, seg int, density func(idx []int) float64) (*sip.Result, error) {
	cfg := sip.Config{
		Workers:      workers,
		Params:       map[string]int{"norb": norb},
		Seg:          bytecode.DefaultSegConfig(seg),
		Integrals:    AOIntegrals(),
		GatherArrays: true,
		Preset: map[string]sip.PresetFunc{
			"Dn": presetFromElem(density),
		},
	}
	return sip.RunSource(FockBuildProgram(), cfg)
}

// FockBuildReference computes the same Fock matrix serially.
func FockBuildReference(norb int, density func(idx []int) float64) []float64 {
	out := make([]float64, norb*norb)
	for m := 1; m <= norb; m++ {
		for n := 1; n <= norb; n++ {
			f := Hcore(m, n)
			for l := 1; l <= norb; l++ {
				for s := 1; s <= norb; s++ {
					d := density([]int{l, s})
					f += d * (2*ERI(m, n, l, s) - ERI(m, l, n, s))
				}
			}
			out[(m-1)*norb+(n-1)] = f
		}
	}
	return out
}

// CCSDEnergySIP runs the CCSD-style iteration driver and returns the
// final pseudo-energy.
func CCSDEnergySIP(norb, nocc, iters, workers, servers, seg int, tInit func(idx []int) float64) (float64, error) {
	cfg := sip.Config{
		Workers:   workers,
		Servers:   servers,
		Params:    map[string]int{"norb": norb, "nocc": nocc, "iters": iters},
		Seg:       bytecode.DefaultSegConfig(seg),
		Integrals: AOIntegrals(),
		Preset: map[string]sip.PresetFunc{
			"T": presetFromElem(tInit),
		},
	}
	res, err := sip.RunSource(CCSDEnergyProgram(), cfg)
	if err != nil {
		return 0, err
	}
	return res.Scalars["e"], nil
}

// CCSDEnergyReference mirrors CCSDEnergyProgram with dense serial
// arrays.
func CCSDEnergyReference(norb, nocc, iters int, tInit func(idx []int) float64) float64 {
	n4 := norb * norb * nocc * nocc
	t := make([]float64, n4)
	idx := func(k, p, i, j int) int {
		return (((k-1)*norb+(p-1))*nocc+(i-1))*nocc + (j - 1)
	}
	for k := 1; k <= norb; k++ {
		for p := 1; p <= norb; p++ {
			for i := 1; i <= nocc; i++ {
				for j := 1; j <= nocc; j++ {
					t[idx(k, p, i, j)] = tInit([]int{k, p, i, j})
				}
			}
		}
	}
	for it := 0; it < iters; it++ {
		told := append([]float64(nil), t...)
		for k := 1; k <= norb; k++ {
			for p := 1; p <= norb; p++ {
				for i := 1; i <= nocc; i++ {
					for j := 1; j <= nocc; j++ {
						v := 0.5 * told[idx(k, p, i, j)]
						var sum float64
						for l := 1; l <= norb; l++ {
							for s := 1; s <= norb; s++ {
								sum += ERI(k, p, l, s) * told[idx(l, s, i, j)]
							}
						}
						t[idx(k, p, i, j)] = v + 0.01*sum
					}
				}
			}
		}
	}
	var e float64
	for _, v := range t {
		e += v * v
	}
	return e
}

// presetFromElem builds a sip.PresetFunc filling blocks from an element
// function over global indices.
func presetFromElem(f func(idx []int) float64) sip.PresetFunc {
	return func(coord segment.Coord, lo, hi []int) *block.Block {
		return fillBlock(lo, hi, f)
	}
}

// PresetFromElem is the exported form of presetFromElem, for callers
// outside the package (the serve packs) that preset arrays from an
// element function.
func PresetFromElem(f func(idx []int) float64) sip.PresetFunc {
	return presetFromElem(f)
}

// ModelDensity is a symmetric, diagonally dominant model density
// D(m,n) = 1/(1+|m-n|), the deterministic stand-in the serve scf pack
// uses for FockBuildProgram's Dn input.
func ModelDensity(idx []int) float64 {
	d := idx[0] - idx[1]
	if d < 0 {
		d = -d
	}
	return 1.0 / (1.0 + float64(d))
}
