// Package chem provides the computational-chemistry workloads the paper
// evaluates: a molecule catalog, a synthetic two-electron integral
// generator, SIAL program generators for the MP2 / CCSD / Fock-build
// computations, and serial reference implementations used to validate
// the SIP and the Global Arrays baseline against each other.
//
// Real electronic-structure integrals and basis sets are proprietary to
// quantum-chemistry packages and irrelevant to the runtime behaviour the
// paper measures; the synthetic integrals here preserve what matters to
// the SIA: deterministic values, the 8-fold permutational symmetry of
// real ERIs, smooth decay with index distance, and the n⁴ volume that
// forces on-demand computation (paper §II: the integral array "requires
// 800 GB by itself").
package chem

import "fmt"

// Molecule describes one benchmark system by the two parameters that
// set problem size in the paper (§II): n, the number of single-particle
// basis functions, and N, the number of occupied orbitals (electrons/2).
// Values are documented approximations for the paper's test molecules,
// not quantum-chemical truth.
type Molecule struct {
	Name      string
	Formula   string
	Electrons int
	Occupied  int // N: occupied orbitals
	Basis     int // n: basis functions
}

// Virtual returns the number of virtual (unoccupied) orbitals.
func (m Molecule) Virtual() int { return m.Basis - m.Occupied }

func (m Molecule) String() string {
	return fmt.Sprintf("%s (%s): n=%d basis functions, N=%d occupied", m.Name, m.Formula, m.Basis, m.Occupied)
}

// Scaled returns a copy of the molecule with basis and occupied counts
// scaled by f; used to shrink paper-sized systems to test-sized ones
// while preserving their relative proportions.
func (m Molecule) Scaled(f float64) Molecule {
	s := m
	s.Occupied = max(1, int(float64(m.Occupied)*f))
	s.Basis = max(s.Occupied+1, int(float64(m.Basis)*f))
	return s
}

// The paper's benchmark molecules (Figures 2-7).
var (
	// Luciferin: Figure 2 (RHF CCSD on the Sun Opteron cluster).
	Luciferin = Molecule{Name: "luciferin", Formula: "C11H8O3S2N2",
		Electrons: 144, Occupied: 72, Basis: 520}
	// WaterCluster21: Figure 3 ((H2O)21H+ CCSD on Cray XT5/XT4).
	WaterCluster21 = Molecule{Name: "water21", Formula: "(H2O)21H+",
		Electrons: 210, Occupied: 105, Basis: 1050}
	// RDX: Figures 4 and 5 (CCSD and CCSD(T) on jaguar, aug-cc-pVTZ
	// scale basis).
	RDX = Molecule{Name: "rdx", Formula: "C3H6N6O6",
		Electrons: 114, Occupied: 57, Basis: 830}
	// HMX: Figure 4 (CCSD on jaguar; scales better than RDX).
	HMX = Molecule{Name: "hmx", Formula: "C4H8N8O8",
		Electrons: 152, Occupied: 76, Basis: 1100}
	// CytosineOH: Figure 7 (UHF MP2 gradient, ACES III vs NWChem).
	CytosineOH = Molecule{Name: "cytosine+OH", Formula: "C4H6N3O2",
		Electrons: 67, Occupied: 34, Basis: 285}
	// DiamondNano: Figure 6 (Fock build; 2944 basis functions is the
	// paper's own number for the aug-cc-pvtz basis).
	DiamondNano = Molecule{Name: "diamond-nano", Formula: "C42H42N",
		Electrons: 302, Occupied: 151, Basis: 2944}
)

// Catalog lists all benchmark molecules by name.
var Catalog = map[string]Molecule{
	Luciferin.Name:      Luciferin,
	WaterCluster21.Name: WaterCluster21,
	RDX.Name:            RDX,
	HMX.Name:            HMX,
	CytosineOH.Name:     CytosineOH,
	DiamondNano.Name:    DiamondNano,
}

// OccEps returns the model orbital energy of occupied orbital i
// (1-based): a filled band below the chemical potential.
func OccEps(i int) float64 { return -10.0 + 0.05*float64(i) }

// VirtEps returns the model orbital energy of virtual orbital a
// (1-based): a band above the gap, keeping all MP2 denominators
// negative.
func VirtEps(a int) float64 { return 1.0 + 0.02*float64(a) }
