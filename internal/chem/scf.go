package chem

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// SCFResult reports a converged self-consistent-field calculation.
type SCFResult struct {
	Energy     float64
	Iterations int
	Converged  bool
	// History holds the electronic energy after each iteration.
	History []float64
	// Orbitals are the final MO coefficients (columns), OrbitalE the
	// orbital energies.
	Orbitals []float64
	OrbitalE []float64
}

// SCF runs a closed-shell Hartree-Fock-like self-consistent field
// calculation over the synthetic integrals, in the division of labour
// the SIA uses: the O(n⁴) Fock build runs as a SIAL program on a SIP
// instance (fockWorkers workers, segment size seg), while the small
// replicated n×n matrices are diagonalized serially on every worker.
// An orthonormal basis is assumed (overlap = identity), so the Roothaan
// equations reduce to an ordinary symmetric eigenproblem.
//
// fockWorkers == 0 selects the pure serial reference path; the two
// paths produce identical iterates, which TestSCFSIPMatchesReference
// exploits, following the paper's two-implementations validation
// practice (§VIII).
func SCF(norb, nocc, maxIter int, fockWorkers, seg int) (*SCFResult, error) {
	if nocc > norb {
		return nil, fmt.Errorf("chem: scf: nocc %d > norb %d", nocc, norb)
	}
	// Initial guess: diagonalize the core Hamiltonian.
	hcore := make([]float64, norb*norb)
	for i := 1; i <= norb; i++ {
		for j := 1; j <= norb; j++ {
			hcore[(i-1)*norb+(j-1)] = Hcore(i, j)
		}
	}
	_, c0, err := linalg.JacobiEigen(norb, hcore)
	if err != nil {
		return nil, err
	}
	density := densityFromOrbitals(norb, nocc, c0)

	res := &SCFResult{}
	const tol = 1e-8
	prevE := math.Inf(1)
	for it := 0; it < maxIter; it++ {
		f, err := buildFock(norb, fockWorkers, seg, density)
		if err != nil {
			return nil, err
		}
		// Electronic energy: E = sum_mn D(mn) [Hcore(mn) + F(mn)].
		var e float64
		for i := range f {
			e += density[i] * (hcore[i] + f[i])
		}
		res.History = append(res.History, e)
		res.Iterations = it + 1

		eig, c, err := linalg.JacobiEigen(norb, f)
		if err != nil {
			return nil, err
		}
		density = densityFromOrbitals(norb, nocc, c)
		res.Energy = e
		res.Orbitals = c
		res.OrbitalE = eig
		if math.Abs(e-prevE) < tol {
			res.Converged = true
			return res, nil
		}
		prevE = e
	}
	return res, nil
}

// densityFromOrbitals builds the closed-shell density
// D(m,n) = sum_{i occ} C(m,i) C(n,i) from MO coefficient columns.
func densityFromOrbitals(norb, nocc int, c []float64) []float64 {
	d := make([]float64, norb*norb)
	for m := 0; m < norb; m++ {
		for n := 0; n < norb; n++ {
			var s float64
			for i := 0; i < nocc; i++ {
				s += c[m*norb+i] * c[n*norb+i]
			}
			d[m*norb+n] = s
		}
	}
	return d
}

// buildFock assembles the Fock matrix either on a SIP instance
// (workers > 0) or serially (workers == 0).
func buildFock(norb, workers, seg int, density []float64) ([]float64, error) {
	dfn := func(idx []int) float64 {
		return density[(idx[0]-1)*norb+(idx[1]-1)]
	}
	if workers == 0 {
		return FockBuildReference(norb, dfn), nil
	}
	res, err := FockBuildSIP(norb, workers, seg, dfn)
	if err != nil {
		return nil, err
	}
	// Assemble the full matrix from the gathered upper-triangle blocks,
	// mirroring across the diagonal (F is symmetric because D is).
	f := make([]float64, norb*norb)
	segs := (norb + seg - 1) / seg
	for _, ab := range res.Arrays["F"] {
		mBlk := ab.Ord/segs + 1
		nBlk := ab.Ord%segs + 1
		bm := min(seg, norb-(mBlk-1)*seg)
		bn := min(seg, norb-(nBlk-1)*seg)
		for x := 0; x < bm; x++ {
			for y := 0; y < bn; y++ {
				m := (mBlk-1)*seg + x
				n := (nBlk-1)*seg + y
				f[m*norb+n] = ab.Data[x*bn+y]
				f[n*norb+m] = ab.Data[x*bn+y]
			}
		}
	}
	return f, nil
}
