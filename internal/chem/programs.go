package chem

// CCSDTermProgram generates the paper's §IV-D example — the
// R(M,N,I,J) = sum_{L,S} V(M,N,L,S)*T(L,S,I,J) contraction with
// on-demand integrals — as a complete SIAL program.  norb and nocc are
// supplied at initialization via the parameters of the same names.
func CCSDTermProgram() string {
	return `
sial ccsd_term
param norb = 8
param nocc = 2
aoindex M = 1, norb
aoindex N = 1, norb
aoindex L = 1, norb
aoindex S = 1, norb
moindex I = 1, nocc
moindex J = 1, nocc
distributed T(L,S,I,J)
distributed R(M,N,I,J)
temp V(M,N,L,S)
temp tmp(M,N,I,J)
temp tmpsum(M,N,I,J)

pardo M, N, I, J
  tmpsum(M,N,I,J) = 0.0
  do L
    do S
      get T(L,S,I,J)
      compute_integrals V(M,N,L,S)
      tmp(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J)
      tmpsum(M,N,I,J) += tmp(M,N,I,J)
    enddo S
  enddo L
  put R(M,N,I,J) = tmpsum(M,N,I,J)
endpardo M, N, I, J
sip_barrier
endsial
`
}

// MP2EnergyProgram generates a SIAL program computing the closed-shell
// MP2 correlation energy
//
//	E2 = sum_{iajb} (ia|jb) * [2(ia|jb) - (ib|ja)] / (ei + ej - ea - eb)
//
// with integrals computed on demand and the orbital-energy denominator
// applied by the user super instruction "mp2_denom" (registered by
// MP2Super).  Parameters: no (occupied), nv (virtual).
func MP2EnergyProgram() string {
	return `
sial mp2_energy
param no = 2
param nv = 4
moindex I = 1, no
moindex J = 1, no
moaindex A = 1, nv
moaindex B = 1, nv
temp v(I,A,J,B)
temp w(I,B,J,A)
temp wp(I,A,J,B)
temp t2(I,A,J,B)
scalar emp2
scalar iv
scalar av
scalar jv
scalar bv

pardo I, A, J, B
  compute_integrals v(I,A,J,B)
  compute_integrals w(I,B,J,A)
  wp(I,A,J,B) = w(I,B,J,A)
  t2(I,A,J,B) = 2.0 * v(I,A,J,B)
  t2(I,A,J,B) -= wp(I,A,J,B)
  iv = I
  av = A
  jv = J
  bv = B
  execute mp2_denom t2(I,A,J,B), iv, av, jv, bv
  emp2 += dot(t2(I,A,J,B), v(I,A,J,B))
endpardo I, A, J, B
collective emp2
endsial
`
}

// MP2ServedProgram is MP2EnergyProgram staged through served arrays
// (mirroring examples/sial/mp2_served.sial): the integrals are prepared
// into server-resident arrays in one pardo, a server barrier seals them,
// and a second pardo requests them back for the contraction.
// Functionally identical to MP2EnergyProgram, but the mid-program sync
// point and the served blocks give the checkpoint subsystem something to
// snapshot and rehydrate — the program of choice for resume drills.
// Parameters: no (occupied), nv (virtual).
func MP2ServedProgram() string {
	return `
sial mp2_served
param no = 2
param nv = 4
moindex I = 1, no
moindex J = 1, no
moaindex A = 1, nv
moaindex B = 1, nv
served vs(I,A,J,B)
served ws(I,B,J,A)
temp v(I,A,J,B)
temp w(I,B,J,A)
temp wp(I,A,J,B)
temp t2(I,A,J,B)
scalar emp2
scalar iv
scalar av
scalar jv
scalar bv

pardo I, A, J, B
  compute_integrals v(I,A,J,B)
  prepare vs(I,A,J,B) = v(I,A,J,B)
  compute_integrals w(I,B,J,A)
  prepare ws(I,B,J,A) = w(I,B,J,A)
endpardo I, A, J, B

server_barrier

pardo I, A, J, B
  request vs(I,A,J,B)
  request ws(I,B,J,A)
  v(I,A,J,B) = vs(I,A,J,B)
  wp(I,A,J,B) = ws(I,B,J,A)
  t2(I,A,J,B) = 2.0 * v(I,A,J,B)
  t2(I,A,J,B) -= wp(I,A,J,B)
  iv = I
  av = A
  jv = J
  bv = B
  execute mp2_denom t2(I,A,J,B), iv, av, jv, bv
  emp2 += dot(t2(I,A,J,B), v(I,A,J,B))
endpardo I, A, J, B

collective emp2
endsial
`
}

// FockBuildProgram generates a SIAL program assembling the closed-shell
// Fock matrix
//
//	F(m,n) = Hcore(m,n) + sum_{ls} Dn(l,s) * [2(mn|ls) - (ml|ns)]
//
// from a distributed density matrix Dn, with both Coulomb and exchange
// integral blocks computed on demand.  The where clause exploits the
// m<=n symmetry exactly as the paper describes for symmetric arrays.
// Parameter: norb.
func FockBuildProgram() string {
	return `
sial fock_build
param norb = 8
aoindex M = 1, norb
aoindex N = 1, norb
aoindex L = 1, norb
aoindex S = 1, norb
distributed Dn(L,S)
distributed F(M,N)
temp hc(M,N)
temp vj(M,N,L,S)
temp vk(M,L,N,S)
temp fj(M,N)
temp fk(M,N)
temp fsum(M,N)

pardo M, N where M <= N
  compute_integrals hc(M,N)
  fsum(M,N) = hc(M,N)
  do L
    do S
      get Dn(L,S)
      compute_integrals vj(M,N,L,S)
      compute_integrals vk(M,L,N,S)
      fj(M,N) = vj(M,N,L,S) * Dn(L,S)
      fj(M,N) *= 2.0
      fk(M,N) = vk(M,L,N,S) * Dn(L,S)
      fsum(M,N) += fj(M,N)
      fsum(M,N) -= fk(M,N)
    enddo S
  enddo L
  put F(M,N) = fsum(M,N)
endpardo M, N
sip_barrier
endsial
`
}

// CCSDEnergyProgram generates a SIAL program for a CCSD-style doubles
// iteration driver: iters sweeps of the paper's contraction updating the
// T amplitudes through a served (disk-backed) array, followed by a
// pseudo-energy e = dot(T, V) accumulated with a collective.  It
// exercises the full instruction repertoire (get/put,
// request/prepare, both barriers, repeated pardo executions).
// Parameters: norb, nocc, iters.
func CCSDEnergyProgram() string {
	return `
sial ccsd_energy
param norb = 8
param nocc = 2
param iters = 2
index it = 1, iters
aoindex K = 1, norb
aoindex P = 1, norb
aoindex L = 1, norb
aoindex S = 1, norb
moindex I = 1, nocc
moindex J = 1, nocc
distributed T(K,P,I,J)
served Told(K,P,I,J)
temp V(K,P,L,S)
temp tmp(K,P,I,J)
temp tnew(K,P,I,J)
scalar e
scalar damp = 0.5

do it
  pardo K, P, I, J
    get T(K,P,I,J)
    prepare Told(K,P,I,J) = T(K,P,I,J)
  endpardo
  server_barrier
  pardo K, P, I, J
    request Told(K,P,I,J)
    tnew(K,P,I,J) = damp * Told(K,P,I,J)
    do L
      do S
        request Told(L,S,I,J)
        compute_integrals V(K,P,L,S)
        tmp(K,P,I,J) = V(K,P,L,S) * Told(L,S,I,J)
        tmp(K,P,I,J) *= 0.01
        tnew(K,P,I,J) += tmp(K,P,I,J)
      enddo S
    enddo L
    put T(K,P,I,J) = tnew(K,P,I,J)
  endpardo
  sip_barrier
enddo it

e = 0.0
pardo K, P, I, J
  get T(K,P,I,J)
  e += dot(T(K,P,I,J), T(K,P,I,J))
endpardo
collective e
endsial
`
}
