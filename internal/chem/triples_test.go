package chem

import (
	"math"
	"testing"
)

func t2Test(idx []int) float64 {
	s := 0
	for d, v := range idx {
		s += (d + 1) * v * v
	}
	return float64(s%5)*0.4 - 0.8
}

func TestTriplesMatchesReference(t *testing.T) {
	const no, nv = 2, 3
	got, err := TriplesSIP(no, nv, 3, 2, t2Test)
	if err != nil {
		t.Fatal(err)
	}
	want := TriplesReference(no, nv, t2Test)
	if math.Abs(got-want) > 1e-11*math.Abs(want) {
		t.Fatalf("E(T) SIP = %.14g, reference = %.14g", got, want)
	}
	if want >= 0 {
		t.Fatalf("triples correction should be negative (negative denominators), got %g", want)
	}
}

func TestTriplesRaggedSegments(t *testing.T) {
	// no=3, nv=4 with seg 2 gives ragged occupied segments and full
	// rank-6 blocks of mixed shapes.
	const no, nv = 3, 4
	got, err := TriplesSIP(no, nv, 2, 2, t2Test)
	if err != nil {
		t.Fatal(err)
	}
	want := TriplesReference(no, nv, t2Test)
	if math.Abs(got-want) > 1e-11*math.Abs(want) {
		t.Fatalf("E(T) = %.14g, want %.14g", got, want)
	}
}

func TestTriplesWorkerInvariance(t *testing.T) {
	const no, nv = 2, 3
	base, err := TriplesSIP(no, nv, 1, 2, t2Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 5} {
		got, err := TriplesSIP(no, nv, w, 2, t2Test)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-base) > 1e-12*math.Abs(base) {
			t.Fatalf("workers=%d: %.15g != %.15g", w, got, base)
		}
	}
}
