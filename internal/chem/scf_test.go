package chem

import (
	"math"
	"testing"
)

func TestSCFConvergesSerial(t *testing.T) {
	res, err := SCF(8, 3, 60, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SCF did not converge in %d iterations: history %v", res.Iterations, res.History)
	}
	if res.Energy >= 0 {
		t.Fatalf("electronic energy %g should be negative (bound system)", res.Energy)
	}
	if len(res.OrbitalE) != 8 || len(res.Orbitals) != 64 {
		t.Fatalf("missing orbitals: %d eigenvalues", len(res.OrbitalE))
	}
	// Orbital energies ascending (sorted by the eigensolver).
	for i := 1; i < len(res.OrbitalE); i++ {
		if res.OrbitalE[i] < res.OrbitalE[i-1] {
			t.Fatalf("orbital energies not sorted: %v", res.OrbitalE)
		}
	}
}

func TestSCFSIPMatchesReference(t *testing.T) {
	// Paper §VIII practice: the SIP-based Fock build and the serial
	// one drive the same SCF; iterates must match to rounding.
	serial, err := SCF(6, 2, 40, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SCF(6, 2, 40, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Iterations != parallel.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", serial.Iterations, parallel.Iterations)
	}
	for i := range serial.History {
		if math.Abs(serial.History[i]-parallel.History[i]) > 1e-9*math.Abs(serial.History[i]) {
			t.Fatalf("iteration %d energies differ: %.12g vs %.12g",
				i, serial.History[i], parallel.History[i])
		}
	}
	if !parallel.Converged {
		t.Fatal("parallel SCF did not converge")
	}
}

func TestSCFEnergyStabilizes(t *testing.T) {
	res, err := SCF(8, 3, 60, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	if len(h) < 3 {
		t.Fatalf("too few iterations: %v", h)
	}
	// Late iterations change far less than early ones.
	early := math.Abs(h[1] - h[0])
	late := math.Abs(h[len(h)-1] - h[len(h)-2])
	if late > early/10 && late > 1e-8 {
		t.Fatalf("energy not stabilizing: early delta %g, late delta %g", early, late)
	}
}

func TestSCFErrors(t *testing.T) {
	if _, err := SCF(4, 5, 10, 0, 0); err == nil {
		t.Fatal("nocc > norb accepted")
	}
}

func TestSCFNotConvergedReported(t *testing.T) {
	res, err := SCF(8, 3, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("one iteration cannot have converged")
	}
}
