package segment

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ix(name string, kind Kind, lo, hi, seg int) Index {
	return Index{Name: name, Kind: kind, Lo: lo, Hi: hi, Seg: seg}
}

func TestIndexSegmentation(t *testing.T) {
	// Paper §IV-E: seg 16 over 1..64 gives segments [1:16], [17:32], ...
	i := ix("i", AO, 1, 64, 16)
	if got := i.NumSegments(); got != 4 {
		t.Fatalf("NumSegments = %d, want 4", got)
	}
	lo, hi := i.SegBounds(2)
	if lo != 17 || hi != 32 {
		t.Fatalf("SegBounds(2) = [%d,%d], want [17,32]", lo, hi)
	}
	if n := i.SegLen(4); n != 16 {
		t.Fatalf("SegLen(4) = %d, want 16", n)
	}
}

func TestIndexRaggedTail(t *testing.T) {
	i := ix("i", AO, 1, 10, 4) // segments: [1,4] [5,8] [9,10]
	if got := i.NumSegments(); got != 3 {
		t.Fatalf("NumSegments = %d, want 3", got)
	}
	if n := i.SegLen(3); n != 2 {
		t.Fatalf("SegLen(3) = %d, want 2", n)
	}
	lo, hi := i.SegBounds(3)
	if lo != 9 || hi != 10 {
		t.Fatalf("SegBounds(3) = [%d,%d], want [9,10]", lo, hi)
	}
}

func TestIndexNonUnitLo(t *testing.T) {
	i := ix("v", MO, 5, 14, 3) // elements 5..14: [5,7] [8,10] [11,13] [14,14]
	if got := i.NumSegments(); got != 4 {
		t.Fatalf("NumSegments = %d, want 4", got)
	}
	lo, hi := i.SegBounds(4)
	if lo != 14 || hi != 14 {
		t.Fatalf("SegBounds(4) = [%d,%d], want [14,14]", lo, hi)
	}
}

func TestIndexSegBoundsPanics(t *testing.T) {
	i := ix("i", AO, 1, 8, 4)
	for _, s := range []int{0, 3, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SegBounds(%d) should panic", s)
				}
			}()
			i.SegBounds(s)
		}()
	}
}

func TestIndexValidate(t *testing.T) {
	cases := []struct {
		ix   Index
		ok   bool
		name string
	}{
		{ix("i", AO, 1, 8, 4), true, "valid"},
		{ix("", AO, 1, 8, 4), false, "empty name"},
		{ix("i", AO, 8, 1, 4), false, "empty range"},
		{ix("i", AO, 1, 8, 0), false, "zero seg"},
		{Index{Name: "ii", Kind: Sub, Lo: 1, Hi: 8, Seg: 2}, false, "sub without parent"},
		{Index{Name: "ii", Kind: Sub, Lo: 1, Hi: 8, Seg: 2, Parent: "i"}, true, "sub with parent"},
	}
	for _, tc := range cases {
		err := tc.ix.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestSubIndex(t *testing.T) {
	// Paper example: i over 1..64 with seg 16; 4 subsegments per segment.
	i := ix("i", MOA, 1, 64, 16)
	ii, err := i.SubIndex("ii", 4)
	if err != nil {
		t.Fatal(err)
	}
	if ii.Seg != 4 || ii.Kind != Sub || ii.Parent != "i" {
		t.Fatalf("subindex = %+v", ii)
	}
	if got := ii.NumSegments(); got != 16 {
		t.Fatalf("subindex NumSegments = %d, want 16", got)
	}
	// Subsegments inside parent segment 2 ([17,32]) are 5..8.
	lo, hi := i.SubSegments(ii, 2)
	if lo != 5 || hi != 8 {
		t.Fatalf("SubSegments(2) = [%d,%d], want [5,8]", lo, hi)
	}
}

func TestSubIndexIndivisible(t *testing.T) {
	i := ix("i", MOA, 1, 64, 16)
	if _, err := i.SubIndex("ii", 5); err == nil {
		t.Fatal("expected error for indivisible subsegment count")
	}
	if _, err := i.SubIndex("ii", 0); err == nil {
		t.Fatal("expected error for nsub=0")
	}
}

func TestShapeBlockCounts(t *testing.T) {
	a := ix("a", AO, 1, 20, 5) // 4 segments
	b := ix("b", MO, 1, 9, 3)  // 3 segments
	s := MustShape(a, b)
	if s.NumBlocks() != 12 {
		t.Fatalf("NumBlocks = %d, want 12", s.NumBlocks())
	}
	if s.NumElements() != 180 {
		t.Fatalf("NumElements = %d, want 180", s.NumElements())
	}
	if s.MaxBlockElems() != 15 {
		t.Fatalf("MaxBlockElems = %d, want 15", s.MaxBlockElems())
	}
}

func TestShapeOrdinalRoundTrip(t *testing.T) {
	s := MustShape(
		ix("a", AO, 1, 20, 5),
		ix("b", MO, 1, 9, 3),
		ix("c", MOA, 1, 8, 4),
	)
	seen := map[int]bool{}
	s.EachCoord(func(c Coord) {
		ord := s.Ordinal(c)
		if seen[ord] {
			t.Fatalf("duplicate ordinal %d for %v", ord, c)
		}
		seen[ord] = true
		back := s.CoordOf(ord)
		if !back.Equal(c) {
			t.Fatalf("CoordOf(Ordinal(%v)) = %v", c, back)
		}
	})
	if len(seen) != s.NumBlocks() {
		t.Fatalf("visited %d blocks, want %d", len(seen), s.NumBlocks())
	}
}

func TestShapeOrdinalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rank := 1 + rng.Intn(4)
		dims := make([]Index, rank)
		for d := range dims {
			n := 1 + rng.Intn(30)
			seg := 1 + rng.Intn(n)
			dims[d] = ix("d", AO, 1, n, seg)
		}
		s := MustShape(dims...)
		ord := rng.Intn(s.NumBlocks())
		return s.Ordinal(s.CoordOf(ord)) == ord
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShapeBlockDims(t *testing.T) {
	s := MustShape(
		ix("a", AO, 1, 10, 4), // segs of len 4,4,2
		ix("b", MO, 1, 6, 6),  // one seg of len 6
	)
	dims := s.BlockDims(Coord{3, 1})
	if dims[0] != 2 || dims[1] != 6 {
		t.Fatalf("BlockDims = %v, want [2 6]", dims)
	}
	if n := s.BlockElems(Coord{3, 1}); n != 12 {
		t.Fatalf("BlockElems = %d, want 12", n)
	}
	lo, hi := s.BlockBounds(Coord{3, 1})
	if lo[0] != 9 || hi[0] != 10 || lo[1] != 1 || hi[1] != 6 {
		t.Fatalf("BlockBounds = %v %v", lo, hi)
	}
}

func TestShapeCheckCoord(t *testing.T) {
	s := MustShape(ix("a", AO, 1, 10, 4))
	if err := s.CheckCoord(Coord{1, 2}); err == nil {
		t.Fatal("rank mismatch should fail")
	}
	if err := s.CheckCoord(Coord{4}); err == nil {
		t.Fatal("out-of-range segment should fail")
	}
	if err := s.CheckCoord(Coord{3}); err != nil {
		t.Fatalf("valid coord rejected: %v", err)
	}
}

func TestShapeElementsSumOverBlocks(t *testing.T) {
	// Invariant: sum of BlockElems over all blocks == NumElements.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rank := 1 + rng.Intn(3)
		dims := make([]Index, rank)
		for d := range dims {
			n := 1 + rng.Intn(25)
			dims[d] = ix("d", AO, 1+rng.Intn(5), 0, 1+rng.Intn(8))
			dims[d].Hi = dims[d].Lo + n - 1
		}
		s := MustShape(dims...)
		total := 0
		s.EachCoord(func(c Coord) { total += s.BlockElems(c) })
		return total == s.NumElements()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	if AO.String() != "aoindex" || Simple.String() != "index" || Sub.String() != "subindex" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
	if Simple.Segmented() || !AO.Segmented() {
		t.Fatal("Segmented wrong")
	}
}

func TestCoordHelpers(t *testing.T) {
	c := Coord{1, 2, 3}
	d := c.Clone()
	d[0] = 9
	if c[0] != 1 {
		t.Fatal("Clone aliases")
	}
	if c.Equal(d) || !c.Equal(Coord{1, 2, 3}) || c.Equal(Coord{1, 2}) {
		t.Fatal("Equal wrong")
	}
	if c.String() != "(1,2,3)" {
		t.Fatalf("String = %q", c.String())
	}
}
