// Package segment implements the segmented index machinery that underlies
// "programming with blocks" in the Super Instruction Architecture.
//
// Each dimension of a large SIAL array is broken into segments; a tuple of
// segment numbers names one block (super number) of the array.  SIAL
// programs loop over segment numbers, never over element indices, so this
// package is the vocabulary shared by the compiler, the SIP runtime, the
// Global Arrays baseline, and the performance model:
//
//   - Kind: the domain-specific index types (aoindex, moindex, ...), used
//     by the SIAL type checker to reject inconsistent index use.
//   - Index: a named, typed element range [Lo, Hi] with a segment size.
//   - Shape: an ordered list of Index descriptors defining an array; it
//     maps segment-coordinate tuples to flat block ordinals and knows the
//     element dimensions of every block (trailing segments may be short).
package segment

import (
	"fmt"
	"strings"
)

// Kind enumerates SIAL index types.  The runtime treats all segment index
// kinds identically; the distinction exists so the language can check that
// (for example) an atomic-orbital index is never used in a
// molecular-orbital dimension (paper §IV-A, footnote 4).
type Kind int

const (
	// Simple indices count iterations; they are not segmented and do
	// not select blocks.
	Simple Kind = iota
	// AO is an atomic-orbital segment index (aoindex).
	AO
	// MO is a molecular-orbital segment index (moindex).
	MO
	// MOA is an alpha-spin molecular-orbital segment index (moaindex).
	MOA
	// MOB is a beta-spin molecular-orbital segment index (mobindex).
	MOB
	// Sub marks a subindex: a finer subdivision of a parent segment
	// index (paper §IV-E).
	Sub
)

var kindNames = map[Kind]string{
	Simple: "index",
	AO:     "aoindex",
	MO:     "moindex",
	MOA:    "moaindex",
	MOB:    "mobindex",
	Sub:    "subindex",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Segmented reports whether indices of this kind select blocks (as
// opposed to simple iteration counters).
func (k Kind) Segmented() bool { return k != Simple }

// Compatible reports whether an index of kind k may be used in an array
// dimension declared with kind d.  Subindices are compatible with their
// parent's kind, which the checker resolves before calling this.
func (k Kind) Compatible(d Kind) bool { return k == d }

// Index describes one named SIAL index: an inclusive element range
// [Lo, Hi] partitioned into segments of Seg elements (the final segment
// may be shorter).  For Simple indices Seg is 1, so segments and elements
// coincide.
type Index struct {
	Name string
	Kind Kind
	Lo   int // first element (1-based, inclusive)
	Hi   int // last element (inclusive)
	Seg  int // segment size in elements

	// Parent is the super index name for Kind == Sub, otherwise empty.
	Parent string
}

// Validate reports an error if the descriptor is malformed.
func (ix Index) Validate() error {
	if ix.Name == "" {
		return fmt.Errorf("segment: index with empty name")
	}
	if ix.Hi < ix.Lo {
		return fmt.Errorf("segment: index %s has empty range [%d,%d]", ix.Name, ix.Lo, ix.Hi)
	}
	if ix.Seg < 1 {
		return fmt.Errorf("segment: index %s has segment size %d < 1", ix.Name, ix.Seg)
	}
	if ix.Kind == Sub && ix.Parent == "" {
		return fmt.Errorf("segment: subindex %s has no parent", ix.Name)
	}
	return nil
}

// N returns the number of elements in the range.
func (ix Index) N() int { return ix.Hi - ix.Lo + 1 }

// NumSegments returns the number of segments in the range.
func (ix Index) NumSegments() int {
	return (ix.N() + ix.Seg - 1) / ix.Seg
}

// SegBounds returns the inclusive element range covered by segment s
// (1-based).  It panics if s is out of range.
func (ix Index) SegBounds(s int) (lo, hi int) {
	if s < 1 || s > ix.NumSegments() {
		panic(fmt.Sprintf("segment: index %s: segment %d out of range [1,%d]", ix.Name, s, ix.NumSegments()))
	}
	lo = ix.Lo + (s-1)*ix.Seg
	hi = lo + ix.Seg - 1
	if hi > ix.Hi {
		hi = ix.Hi
	}
	return lo, hi
}

// SegLen returns the number of elements in segment s (1-based).
func (ix Index) SegLen(s int) int {
	lo, hi := ix.SegBounds(s)
	return hi - lo + 1
}

// SubIndex derives the subindex named name from ix, with nsub subsegments
// per segment of ix (paper §IV-E1: the subindex range covers the same
// elements with segment size seg(ix)/nsub).  The parent segment size must
// be divisible by nsub.
func (ix Index) SubIndex(name string, nsub int) (Index, error) {
	if nsub < 1 {
		return Index{}, fmt.Errorf("segment: subindex %s of %s: nsub %d < 1", name, ix.Name, nsub)
	}
	if ix.Seg%nsub != 0 {
		return Index{}, fmt.Errorf("segment: subindex %s of %s: segment size %d not divisible by %d",
			name, ix.Name, ix.Seg, nsub)
	}
	return Index{
		Name:   name,
		Kind:   Sub,
		Lo:     ix.Lo,
		Hi:     ix.Hi,
		Seg:    ix.Seg / nsub,
		Parent: ix.Name,
	}, nil
}

// SubSegments returns the inclusive range of subindex segment numbers of
// sub that fall inside segment s of the parent index ix.  This implements
// the "do ii in i" iteration construct.
func (ix Index) SubSegments(sub Index, s int) (lo, hi int) {
	elo, ehi := ix.SegBounds(s)
	// Subsegment containing element e is 1 + (e-Lo)/sub.Seg.
	lo = 1 + (elo-sub.Lo)/sub.Seg
	hi = 1 + (ehi-sub.Lo)/sub.Seg
	return lo, hi
}

// Shape is an ordered list of index descriptors declaring the dimensions
// of a SIAL array.
type Shape struct {
	Dims []Index
}

// NewShape validates the dimensions and builds a Shape.
func NewShape(dims ...Index) (Shape, error) {
	for _, d := range dims {
		if err := d.Validate(); err != nil {
			return Shape{}, err
		}
	}
	return Shape{Dims: dims}, nil
}

// MustShape is NewShape that panics on error, for tests and literals.
func MustShape(dims ...Index) Shape {
	s, err := NewShape(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s.Dims) }

// NumBlocks returns the total number of blocks in the array.
func (s Shape) NumBlocks() int {
	n := 1
	for _, d := range s.Dims {
		n *= d.NumSegments()
	}
	return n
}

// NumElements returns the total number of elements in the array.
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s.Dims {
		n *= d.N()
	}
	return n
}

// MaxBlockElems returns the number of elements in the largest block: the
// product of the full segment sizes.
func (s Shape) MaxBlockElems() int {
	n := 1
	for _, d := range s.Dims {
		n *= min(d.Seg, d.N())
	}
	return n
}

// Coord is a tuple of 1-based segment numbers naming one block.
type Coord []int

func (c Coord) String() string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Clone returns an independent copy of the coordinate.
func (c Coord) Clone() Coord {
	out := make(Coord, len(c))
	copy(out, c)
	return out
}

// Equal reports whether two coordinates are identical.
func (c Coord) Equal(o Coord) bool {
	if len(c) != len(o) {
		return false
	}
	for i, v := range c {
		if v != o[i] {
			return false
		}
	}
	return true
}

// CheckCoord reports an error unless c is a valid block coordinate of s.
func (s Shape) CheckCoord(c Coord) error {
	if len(c) != len(s.Dims) {
		return fmt.Errorf("segment: coordinate %v has rank %d, shape has rank %d", c, len(c), len(s.Dims))
	}
	for i, v := range c {
		if n := s.Dims[i].NumSegments(); v < 1 || v > n {
			return fmt.Errorf("segment: coordinate %v: dim %d (%s) segment %d out of range [1,%d]",
				c, i, s.Dims[i].Name, v, n)
		}
	}
	return nil
}

// Ordinal maps a block coordinate to a flat 0-based block ordinal using
// row-major order (last coordinate varies fastest).  The ordinal is what
// the runtime hashes to choose a block's home rank.
func (s Shape) Ordinal(c Coord) int {
	if err := s.CheckCoord(c); err != nil {
		panic(err)
	}
	ord := 0
	for i, v := range c {
		ord = ord*s.Dims[i].NumSegments() + (v - 1)
	}
	return ord
}

// CoordOf is the inverse of Ordinal.
func (s Shape) CoordOf(ord int) Coord {
	if ord < 0 || ord >= s.NumBlocks() {
		panic(fmt.Sprintf("segment: ordinal %d out of range [0,%d)", ord, s.NumBlocks()))
	}
	c := make(Coord, len(s.Dims))
	for i := len(s.Dims) - 1; i >= 0; i-- {
		n := s.Dims[i].NumSegments()
		c[i] = ord%n + 1
		ord /= n
	}
	return c
}

// BlockDims returns the element dimensions of the block at coordinate c.
// Interior blocks are full segments; blocks on a trailing edge may be
// shorter.
func (s Shape) BlockDims(c Coord) []int {
	if err := s.CheckCoord(c); err != nil {
		panic(err)
	}
	dims := make([]int, len(c))
	for i, v := range c {
		dims[i] = s.Dims[i].SegLen(v)
	}
	return dims
}

// BlockElems returns the number of elements in the block at coordinate c.
func (s Shape) BlockElems(c Coord) int {
	n := 1
	for _, d := range s.BlockDims(c) {
		n *= d
	}
	return n
}

// BlockBounds returns, per dimension, the inclusive element ranges
// covered by the block at coordinate c.
func (s Shape) BlockBounds(c Coord) (lo, hi []int) {
	if err := s.CheckCoord(c); err != nil {
		panic(err)
	}
	lo = make([]int, len(c))
	hi = make([]int, len(c))
	for i, v := range c {
		lo[i], hi[i] = s.Dims[i].SegBounds(v)
	}
	return lo, hi
}

// EachCoord calls fn for every block coordinate of the shape in ordinal
// order.  The coordinate passed to fn is reused between calls; clone it
// to retain it.
func (s Shape) EachCoord(fn func(Coord)) {
	if s.Rank() == 0 {
		fn(Coord{})
		return
	}
	c := make(Coord, s.Rank())
	for i := range c {
		c[i] = 1
	}
	for {
		fn(c)
		i := s.Rank() - 1
		for ; i >= 0; i-- {
			c[i]++
			if c[i] <= s.Dims[i].NumSegments() {
				break
			}
			c[i] = 1
		}
		if i < 0 {
			return
		}
	}
}

func (s Shape) String() string {
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		parts[i] = d.Name
	}
	return "(" + strings.Join(parts, ",") + ")"
}
