package mpi

import (
	"sync"
	"testing"
	"time"
)

func TestSendRecv(t *testing.T) {
	w := NewWorld(2)
	done := make(chan struct{})
	go func() {
		c := w.Comm(1)
		m := c.Recv(0, 7)
		if m.Data.(string) != "hello" || m.Source != 0 || m.Tag != 7 {
			t.Errorf("got %+v", m)
		}
		close(done)
	}()
	w.Comm(0).Send(1, 7, "hello")
	<-done
}

func TestRecvMatchesTagAndSource(t *testing.T) {
	w := NewWorld(3)
	c2 := w.Comm(2)
	w.Comm(0).Send(2, 1, "a")
	w.Comm(1).Send(2, 2, "b")
	w.Comm(0).Send(2, 2, "c")
	// Match by tag regardless of arrival order.
	if m := c2.Recv(AnySource, 2); m.Data.(string) != "b" {
		t.Fatalf("tag 2: got %v", m.Data)
	}
	// Match by source.
	if m := c2.Recv(0, AnyTag); m.Data.(string) != "a" {
		t.Fatalf("src 0: got %v", m.Data)
	}
	if m := c2.Recv(AnySource, AnyTag); m.Data.(string) != "c" {
		t.Fatalf("rest: got %v", m.Data)
	}
}

func TestPerSenderFIFO(t *testing.T) {
	w := NewWorld(2)
	for i := 0; i < 100; i++ {
		w.Comm(0).Send(1, 5, i)
	}
	c := w.Comm(1)
	for i := 0; i < 100; i++ {
		if m := c.Recv(0, 5); m.Data.(int) != i {
			t.Fatalf("message %d out of order: got %v", i, m.Data)
		}
	}
}

func TestTryRecvAndProbe(t *testing.T) {
	w := NewWorld(2)
	c := w.Comm(1)
	if _, ok := c.TryRecv(AnySource, AnyTag); ok {
		t.Fatal("TryRecv on empty queue succeeded")
	}
	if c.Probe(AnySource, AnyTag) {
		t.Fatal("Probe on empty queue succeeded")
	}
	w.Comm(0).Send(1, 3, 42)
	if !c.Probe(0, 3) {
		t.Fatal("Probe missed queued message")
	}
	m, ok := c.TryRecv(0, 3)
	if !ok || m.Data.(int) != 42 {
		t.Fatalf("TryRecv: %v %v", m, ok)
	}
	if c.Probe(0, 3) {
		t.Fatal("message not removed by TryRecv")
	}
}

func TestIrecvTestWait(t *testing.T) {
	w := NewWorld(2)
	c := w.Comm(1)
	req := c.Irecv(0, 9)
	if _, done := req.Test(); done {
		t.Fatal("request complete before send")
	}
	w.Comm(0).Send(1, 9, "x")
	// Test may need a moment in concurrent settings, but here the send
	// already completed synchronously.
	if _, done := req.Test(); !done {
		t.Fatal("request not complete after send")
	}
	if m := req.Wait(); m.Data.(string) != "x" {
		t.Fatalf("Wait: %v", m.Data)
	}
	// Wait is idempotent.
	if m := req.Wait(); m.Data.(string) != "x" {
		t.Fatalf("second Wait: %v", m.Data)
	}
}

func TestIrecvWaitBlocks(t *testing.T) {
	w := NewWorld(2)
	req := w.Comm(1).Irecv(0, 1)
	got := make(chan Message, 1)
	go func() { got <- req.Wait() }()
	select {
	case <-got:
		t.Fatal("Wait returned before send")
	case <-time.After(10 * time.Millisecond):
	}
	w.Comm(0).Send(1, 1, 5)
	select {
	case m := <-got:
		if m.Data.(int) != 5 {
			t.Fatalf("got %v", m.Data)
		}
	case <-time.After(time.Second):
		t.Fatal("Wait did not return after send")
	}
}

func TestGroupBarrier(t *testing.T) {
	w := NewWorld(4)
	g := w.NewGroup(4)
	var mu sync.Mutex
	arrived := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			arrived++
			mu.Unlock()
			g.Barrier()
			mu.Lock()
			if arrived != 4 {
				t.Errorf("passed barrier with %d arrivals", arrived)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
}

func TestGroupBarrierReusable(t *testing.T) {
	w := NewWorld(2)
	g := w.NewGroup(2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				g.Barrier()
			}
		}()
	}
	wg.Wait()
}

func TestAllreduceSum(t *testing.T) {
	w := NewWorld(3)
	g := w.NewGroup(3)
	results := make(chan float64, 3)
	for i := 0; i < 3; i++ {
		go func(v float64) { results <- g.AllreduceSum(v) }(float64(i + 1))
	}
	for i := 0; i < 3; i++ {
		if r := <-results; r != 6 {
			t.Fatalf("allreduce = %v, want 6", r)
		}
	}
	// Second round starts clean.
	for i := 0; i < 3; i++ {
		go func() { results <- g.AllreduceSum(10) }()
	}
	for i := 0; i < 3; i++ {
		if r := <-results; r != 30 {
			t.Fatalf("round 2 allreduce = %v, want 30", r)
		}
	}
}

func TestManySendersOneReceiver(t *testing.T) {
	const senders = 8
	const msgs = 200
	w := NewWorld(senders + 1)
	for s := 0; s < senders; s++ {
		go func(rank int) {
			c := w.Comm(rank)
			for i := 0; i < msgs; i++ {
				c.Send(senders, rank, i)
			}
		}(s)
	}
	c := w.Comm(senders)
	counts := make([]int, senders)
	for i := 0; i < senders*msgs; i++ {
		m := c.Recv(AnySource, AnyTag)
		if m.Data.(int) != counts[m.Source] {
			t.Fatalf("sender %d message out of order: got %v want %d", m.Source, m.Data, counts[m.Source])
		}
		counts[m.Source]++
	}
}

func TestPoisonReleasesBlockedMembers(t *testing.T) {
	w := NewWorld(3)
	g := w.NewGroup(3)
	aborted := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func() {
			defer func() {
				aborted <- recover() == ErrAborted
			}()
			g.Barrier() // the third member never arrives
		}()
	}
	time.Sleep(10 * time.Millisecond)
	g.Poison()
	for i := 0; i < 2; i++ {
		select {
		case ok := <-aborted:
			if !ok {
				t.Fatal("blocked member did not panic with ErrAborted")
			}
		case <-time.After(time.Second):
			t.Fatal("poison did not release a blocked member")
		}
	}
	// Later collective calls abort immediately.
	func() {
		defer func() {
			if recover() != ErrAborted {
				t.Error("post-poison collective did not abort")
			}
		}()
		g.AllreduceSum(1)
	}()
}

func TestPanics(t *testing.T) {
	w := NewWorld(2)
	for _, fn := range []func(){
		func() { NewWorld(0) },
		func() { w.Comm(5) },
		func() { w.Comm(-1) },
		func() { w.Comm(0).Send(9, 0, nil) },
		func() { w.NewGroup(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
