// Package mpi provides an in-process message-passing layer with MPI-like
// semantics: ranks, tagged asynchronous point-to-point messages with
// source/tag matching and wildcards, barriers, and reductions.
//
// The SIP runtime (paper §V) is written against MPI; this package is the
// substitution that lets the whole runtime — block protocol, prefetching,
// communication/computation overlap — run unchanged inside one Go
// process, with each MPI process played by a goroutine.  Semantics follow
// MPI where it matters to the SIP:
//
//   - Sends are buffered and never block (MPI_Isend with an eager
//     protocol).  The receiver takes ownership of the payload; senders
//     must not mutate data after sending.
//   - Receives match on (source, tag), either exact or the AnySource /
//     AnyTag wildcards, and preserve per-sender FIFO order among
//     matching messages.
//   - Barriers and reductions operate over explicit rank groups, like
//     MPI communicators.
package mpi

import (
	"fmt"
	"sync"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Message is a received message.
type Message struct {
	Source int
	Tag    int
	Data   any

	valid bool // set when the message was actually dequeued
}

// Observer receives message-level instrumentation callbacks.  Methods
// are invoked synchronously on the sender's goroutine and must be
// cheap and concurrency-safe.
type Observer interface {
	// OnSend is called after a message is enqueued.  depth is the
	// destination mailbox's queue length right after the enqueue (the
	// send-side view of backlog: its maximum is the high-water mark of
	// the receiver's inbox).
	OnSend(src, dst, tag int, data any, depth int)
}

// World is a set of communicating ranks.
type World struct {
	n      int
	boxes  []*mailbox
	obs    Observer
	groups sync.Map // map[string]*Group, keyed by rank-set signature
}

// SetObserver installs a message observer.  It must be called before
// any rank starts communicating.
func (w *World) SetObserver(o Observer) { w.obs = o }

// NewWorld creates a world with n ranks numbered 0..n-1.
func NewWorld(n int) *World {
	if n < 1 {
		panic(fmt.Sprintf("mpi: world size %d < 1", n))
	}
	w := &World{n: n, boxes: make([]*mailbox, n)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Comm returns the communication endpoint for one rank.  Each rank's
// Comm must be used by a single goroutine at a time for receives;
// sends are safe from any goroutine.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.n {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.n))
	}
	return &Comm{world: w, rank: rank}
}

// Comm is one rank's endpoint.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.n }

// Send delivers data to dst with the given tag.  It never blocks
// (buffered, eager).  The receiver takes ownership of data.
func (c *Comm) Send(dst, tag int, data any) {
	if dst < 0 || dst >= c.world.n {
		panic(fmt.Sprintf("mpi: send to rank %d out of range [0,%d)", dst, c.world.n))
	}
	depth := c.world.boxes[dst].put(Message{Source: c.rank, Tag: tag, Data: data})
	if o := c.world.obs; o != nil {
		o.OnSend(c.rank, dst, tag, data, depth)
	}
}

// Recv blocks until a message matching (src, tag) arrives and returns it.
// Use AnySource / AnyTag as wildcards.
func (c *Comm) Recv(src, tag int) Message {
	return c.world.boxes[c.rank].get(src, tag, true)
}

// TryRecv returns a matching message if one is already queued.
func (c *Comm) TryRecv(src, tag int) (Message, bool) {
	m := c.world.boxes[c.rank].get(src, tag, false)
	return m, m.valid
}

// Probe reports whether a message matching (src, tag) is queued, without
// removing it.
func (c *Comm) Probe(src, tag int) bool {
	return c.world.boxes[c.rank].probe(src, tag)
}

// Irecv posts a non-blocking receive and returns a request handle.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{comm: c, src: src, tag: tag}
}

// Request is a pending non-blocking receive.
type Request struct {
	comm *Comm
	src  int
	tag  int
	done bool
	msg  Message
}

// Test attempts to complete the receive without blocking.
func (r *Request) Test() (Message, bool) {
	if r.done {
		return r.msg, true
	}
	m, ok := r.comm.TryRecv(r.src, r.tag)
	if ok {
		r.msg = m
		r.done = true
	}
	return r.msg, r.done
}

// Wait blocks until the receive completes and returns the message.
func (r *Request) Wait() Message {
	if r.done {
		return r.msg
	}
	r.msg = r.comm.Recv(r.src, r.tag)
	r.done = true
	return r.msg
}

// mailbox is one rank's unbounded, order-preserving message queue with
// (source, tag) matching.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []Message
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) int {
	mb.mu.Lock()
	m.valid = true
	mb.queue = append(mb.queue, m)
	depth := len(mb.queue)
	mb.mu.Unlock()
	mb.cond.Broadcast()
	return depth
}

func matches(m Message, src, tag int) bool {
	return (src == AnySource || m.Source == src) && (tag == AnyTag || m.Tag == tag)
}

func (mb *mailbox) get(src, tag int, blocking bool) Message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if matches(m, src, tag) {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		if !blocking {
			return Message{}
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) probe(src, tag int) bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for _, m := range mb.queue {
		if matches(m, src, tag) {
			return true
		}
	}
	return false
}

// ErrAborted is the panic value delivered to collective operations on a
// poisoned group.  Callers that poison a group should recover it.
var ErrAborted = fmt.Errorf("mpi: group aborted")

// Group is a subset of ranks supporting collective operations, like an
// MPI communicator.
type Group struct {
	n        int
	mu       sync.Mutex
	cond     *sync.Cond
	gen      int
	count    int
	acc      float64
	result   float64
	poisoned bool
}

// NewGroup creates a collective group of n participants.  Every
// participant must call each collective operation exactly once per
// "round"; mixing operations across a round is a programming error.
func (w *World) NewGroup(n int) *Group {
	if n < 1 {
		panic(fmt.Sprintf("mpi: group size %d < 1", n))
	}
	g := &Group{n: n}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Barrier blocks until all group members have called it.
func (g *Group) Barrier() {
	g.AllreduceSum(0)
}

// AllreduceSum sums v across all members and returns the total to each.
// On a poisoned group it panics with ErrAborted instead of blocking
// forever on members that will never arrive.
func (g *Group) AllreduceSum(v float64) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.poisoned {
		panic(ErrAborted)
	}
	gen := g.gen
	g.acc += v
	g.count++
	if g.count == g.n {
		g.result = g.acc
		g.acc = 0
		g.count = 0
		g.gen++
		g.cond.Broadcast()
		return g.result
	}
	for g.gen == gen && !g.poisoned {
		g.cond.Wait()
	}
	if g.gen == gen && g.poisoned {
		panic(ErrAborted)
	}
	return g.result
}

// Poison aborts the group: members blocked in collectives panic with
// ErrAborted, and future collective calls panic immediately.  Used to
// convert a member failure into a clean collective shutdown instead of a
// deadlock.
func (g *Group) Poison() {
	g.mu.Lock()
	g.poisoned = true
	g.mu.Unlock()
	g.cond.Broadcast()
}
