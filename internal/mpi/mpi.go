// Package mpi provides an in-process message-passing layer with MPI-like
// semantics: ranks, tagged asynchronous point-to-point messages with
// source/tag matching and wildcards, barriers, and reductions.
//
// The SIP runtime (paper §V) is written against MPI; this package is the
// substitution that lets the whole runtime — block protocol, prefetching,
// communication/computation overlap — run unchanged inside one Go
// process, with each MPI process played by a goroutine.  Semantics follow
// MPI where it matters to the SIP:
//
//   - Sends are buffered and never block (MPI_Isend with an eager
//     protocol).  The receiver takes ownership of the payload; senders
//     must not mutate data after sending.
//   - Receives match on (source, tag), either exact or the AnySource /
//     AnyTag wildcards, and preserve per-sender FIFO order among
//     matching messages.
//   - Barriers and reductions operate over explicit rank groups, like
//     MPI communicators.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi/transport"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Message is a received message.
type Message struct {
	Source int
	Tag    int
	Data   any

	valid bool // set when the message was actually dequeued
}

// Observer receives message-level instrumentation callbacks.  Methods
// are invoked synchronously on the sender's goroutine and must be
// cheap and concurrency-safe.
type Observer interface {
	// OnSend is called after a message is enqueued.  depth is the
	// destination mailbox's queue length right after the enqueue (the
	// send-side view of backlog: its maximum is the high-water mark of
	// the receiver's inbox).
	OnSend(src, dst, tag int, data any, depth int)
}

// World is a set of communicating ranks.  The default world created by
// NewWorld hosts every rank in-process; NewDistributedWorld hosts a
// subset of the ranks and reaches the rest through a Transport.
type World struct {
	n       int
	boxes   []*mailbox // nil entries are remote ranks
	local   []int      // locally hosted ranks, in rank order
	obs     Observer
	groups  sync.Map // map[string]Group, keyed by rank-set signature
	tr      transport.Transport
	closed  atomic.Bool
	aborted atomic.Bool

	failMu  sync.Mutex
	failure *RankFailure
	live    atomic.Pointer[liveness]
	clock   clockState

	// Recovery state (SetRecover).  evicted maps a dead rank to the
	// reason it was evicted; evictGen counts evictions so waiters can
	// detect membership changes without holding evictMu.
	recovering atomic.Bool
	evictMu    sync.Mutex
	critical   map[int]bool
	evicted    map[int]string
	evictGen   atomic.Uint64

	// departed tracks remote ranks that announced a clean shutdown
	// (byeNotice from World.Close), so their subsequent disconnect is
	// teardown, not failure.  Independent of recovery mode.
	departMu sync.Mutex
	departed map[int]bool

	// latent tracks provisioned-but-inactive ranks (SetLatent): spare
	// slots a long-running pool can activate later with Join — the
	// inverse of Evict, sharing its convergence machinery (membership
	// stamp bump, joinNotice fan-out, mailbox wakeups).  Sends to a
	// latent rank are dropped and liveness ignores it until it joins.
	latentMu sync.Mutex
	latent   map[int]bool
}

// SetObserver installs a message observer.  It must be called before
// any rank starts communicating.
func (w *World) SetObserver(o Observer) { w.obs = o }

// NewWorld creates a world with n ranks numbered 0..n-1.
func NewWorld(n int) *World {
	if n < 1 {
		panic(fmt.Sprintf("mpi: world size %d < 1", n))
	}
	w := &World{n: n, boxes: make([]*mailbox, n)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
		w.local = append(w.local, i)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Comm returns the communication endpoint for one rank.  Each rank's
// Comm must be used by a single goroutine at a time for receives;
// sends are safe from any goroutine.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.n {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.n))
	}
	return &Comm{world: w, rank: rank}
}

// Comm is one rank's endpoint.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.n }

// Send delivers data to dst with the given tag.  It never blocks
// (buffered, eager).
//
// Ownership of data depends on the transport: the in-process fast path
// and the Router transport hand the receiver the same pointer, so the
// sender must not mutate data after sending; the TCP transport
// serializes data before Send returns, so the sender may reuse it.
// Code that must run on either transport follows the stricter
// in-process contract.
func (c *Comm) Send(dst, tag int, data any) {
	if dst < 0 || dst >= c.world.n {
		panic(fmt.Sprintf("mpi: send to rank %d out of range [0,%d)", dst, c.world.n))
	}
	w := c.world
	if w.IsEvicted(dst) || w.Departed(dst) || w.IsLatent(dst) {
		// The rank is gone (evicted, or cleanly shut down after finishing
		// its part of the protocol) or not yet active (latent); nothing is
		// listening.  Dropping the send here keeps every protocol layer
		// free of per-send liveness checks (the matching receive side
		// uses RecvUntil).
		return
	}
	depth := -1 // remote sends have no mailbox-depth view
	if box := w.boxes[dst]; box != nil {
		depth = box.put(Message{Source: c.rank, Tag: tag, Data: data})
	} else if err := w.tr.Send(c.rank, dst, tag, data); err != nil {
		// The connection is gone: abort locally instead of hanging on
		// replies that can never arrive, recording the unreachable rank
		// so the abort is attributed.  (During clean teardown the closed
		// flag suppresses the abort.)
		if !w.closed.Load() {
			w.recordFailure(dst, fmt.Sprintf("send failed: %v", err))
			w.Abort()
		}
	}
	if o := w.obs; o != nil {
		o.OnSend(c.rank, dst, tag, data, depth)
	}
}

// Multicast delivers one payload to every rank in dsts under one tag.
// Unlike Send, the CALLER retains ownership of data: every receiver
// that would share memory with the sender — local mailboxes, and
// remote ranks behind a pointer-sharing transport — gets clone()
// instead, while serializing transports encode data once before
// Multicast returns and hand the shared bytes to every destination.
// So a replica fan-out over TCP costs one encode and zero clones; the
// same call over the in-process paths costs one clone per receiver.
//
// clone may be nil when the payload is immutable: every receiver then
// shares data itself.  Evicted, departed, and latent ranks are skipped
// exactly as in Send, and a transport failure aborts the world
// attributed to the failing destination.
func (c *Comm) Multicast(dsts []int, tag int, data any, clone func() any) {
	w := c.world
	each := func() any {
		if clone == nil {
			return data
		}
		return clone()
	}
	var mc transport.Multicaster
	if w.tr != nil {
		mc = transport.MulticasterFor(w.tr)
	}
	var remote []int
	for _, dst := range dsts {
		if dst < 0 || dst >= w.n {
			panic(fmt.Sprintf("mpi: multicast to rank %d out of range [0,%d)", dst, w.n))
		}
		if mc != nil && w.boxes[dst] == nil {
			if w.IsEvicted(dst) || w.Departed(dst) || w.IsLatent(dst) {
				continue
			}
			remote = append(remote, dst)
			continue
		}
		c.Send(dst, tag, each())
	}
	if len(remote) == 0 {
		return
	}
	if err := mc.SendMulti(c.rank, remote, tag, data); err != nil {
		if !w.closed.Load() {
			rank := remote[0]
			var se *transport.SendError
			if errors.As(err, &se) {
				rank = se.Rank
			}
			w.recordFailure(rank, fmt.Sprintf("send failed: %v", err))
			w.Abort()
		}
	}
	if o := w.obs; o != nil {
		for _, dst := range remote {
			o.OnSend(c.rank, dst, tag, data, -1)
		}
	}
}

// box returns this rank's mailbox, which must be hosted locally.
func (c *Comm) box() *mailbox {
	b := c.world.boxes[c.rank]
	if b == nil {
		panic(fmt.Sprintf("mpi: rank %d is not hosted by this world", c.rank))
	}
	return b
}

// Recv blocks until a message matching (src, tag) arrives and returns it.
// Use AnySource / AnyTag as wildcards.  On an aborted world it drains
// already-delivered matching messages, then panics with ErrAborted
// instead of blocking forever.
func (c *Comm) Recv(src, tag int) Message {
	return c.box().get(src, tag, true)
}

// RecvTimeout blocks up to d for a message matching (src, tag).  It
// returns ok == false on timeout; d <= 0 means no deadline (plain
// Recv).  Abort semantics match Recv: delivered matches are drained,
// then an aborted world panics with ErrAborted.
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) (Message, bool) {
	if d <= 0 {
		return c.Recv(src, tag), true
	}
	m := c.box().getCancel(src, tag, d, nil)
	return m, m.valid
}

// RecvUntil blocks for a message matching (src, tag), bounded by an
// optional deadline d (<= 0 means none) and a cancel predicate.  It
// returns ok == false when the deadline passes or cancel reports true;
// cancel is re-evaluated on every mailbox wakeup (Evict wakes all local
// mailboxes), must be cheap, and must not block — it is called with the
// mailbox lock held.  Abort semantics match Recv.
func (c *Comm) RecvUntil(src, tag int, d time.Duration, cancel func() bool) (Message, bool) {
	m := c.box().getCancel(src, tag, d, cancel)
	return m, m.valid
}

// RecvRange blocks until a message from src whose tag lies in
// [tagLo, tagHi] arrives and returns it.  Use AnySource as a source
// wildcard.  Tag-range matching lets several protocol engines share one
// rank's mailbox — each listening on its own disjoint tag window — the
// way a wildcard AnyTag receive cannot (it would steal the others'
// messages).  Abort semantics match Recv.
func (c *Comm) RecvRange(src, tagLo, tagHi int) Message {
	return c.box().getRange(src, tagLo, tagHi, 0, nil)
}

// RecvRangeUntil is RecvRange bounded by an optional deadline d (<= 0
// means none) and a cancel predicate with RecvUntil semantics.  It
// returns ok == false when the deadline passes or cancel reports true.
func (c *Comm) RecvRangeUntil(src, tagLo, tagHi int, d time.Duration, cancel func() bool) (Message, bool) {
	m := c.box().getRange(src, tagLo, tagHi, d, cancel)
	return m, m.valid
}

// TryRecv returns a matching message if one is already queued.  On an
// aborted world with no queued match it panics with ErrAborted, so
// Test/TryRecv polling loops terminate like blocked receives do.
func (c *Comm) TryRecv(src, tag int) (Message, bool) {
	m := c.box().get(src, tag, false)
	return m, m.valid
}

// Probe reports whether a message matching (src, tag) is queued, without
// removing it.
func (c *Comm) Probe(src, tag int) bool {
	return c.box().probe(src, tag)
}

// Irecv posts a non-blocking receive and returns a request handle.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{comm: c, src: src, tag: tag}
}

// Request is a pending non-blocking receive.
type Request struct {
	comm *Comm
	src  int
	tag  int
	done bool
	msg  Message
}

// Test attempts to complete the receive without blocking.
func (r *Request) Test() (Message, bool) {
	if r.done {
		return r.msg, true
	}
	m, ok := r.comm.TryRecv(r.src, r.tag)
	if ok {
		r.msg = m
		r.done = true
	}
	return r.msg, r.done
}

// Wait blocks until the receive completes and returns the message.
func (r *Request) Wait() Message {
	if r.done {
		return r.msg
	}
	r.msg = r.comm.Recv(r.src, r.tag)
	r.done = true
	return r.msg
}

// WaitTimeout blocks up to d for the receive to complete.  It returns
// ok == false on timeout; the request stays pending and may be waited
// on again.  d <= 0 waits without a deadline.
func (r *Request) WaitTimeout(d time.Duration) (Message, bool) {
	if r.done {
		return r.msg, true
	}
	m, ok := r.comm.RecvTimeout(r.src, r.tag, d)
	if ok {
		r.msg = m
		r.done = true
	}
	return r.msg, r.done
}

// WaitUntil blocks for the receive to complete, bounded by an optional
// deadline d (<= 0 means none) and a cancel predicate with RecvUntil
// semantics (re-evaluated on every mailbox wakeup; Evict wakes all
// local mailboxes).  It returns ok == false when the deadline passes or
// cancel reports true; the request stays pending and may be waited on
// again — against the same source or re-posted against another.
func (r *Request) WaitUntil(d time.Duration, cancel func() bool) (Message, bool) {
	if r.done {
		return r.msg, true
	}
	m, ok := r.comm.RecvUntil(r.src, r.tag, d, cancel)
	if ok {
		r.msg = m
		r.done = true
	}
	return r.msg, r.done
}

// Source returns the source rank this request matches (possibly
// AnySource).
func (r *Request) Source() int { return r.src }

// Tag returns the tag the request is listening on.
func (r *Request) Tag() int { return r.tag }

// mailbox is one rank's unbounded, order-preserving message queue with
// (source, tag) matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Message
	aborted bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) int {
	mb.mu.Lock()
	m.valid = true
	mb.queue = append(mb.queue, m)
	depth := len(mb.queue)
	mb.mu.Unlock()
	mb.cond.Broadcast()
	return depth
}

func matches(m Message, src, tag int) bool {
	return (src == AnySource || m.Source == src) && (tag == AnyTag || m.Tag == tag)
}

func matchesRange(m Message, src, tagLo, tagHi int) bool {
	return (src == AnySource || m.Source == src) && m.Tag >= tagLo && m.Tag <= tagHi
}

// getRange is getCancel with inclusive tag-range matching.  d <= 0 and
// a nil cancel make it a plain blocking receive.
func (mb *mailbox) getRange(src, tagLo, tagHi int, d time.Duration, cancel func() bool) Message {
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
		timer := time.AfterFunc(d, func() {
			mb.mu.Lock()
			mb.mu.Unlock() //nolint:staticcheck // empty critical section is the point
			mb.cond.Broadcast()
		})
		defer timer.Stop()
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if matchesRange(m, src, tagLo, tagHi) {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		if mb.aborted {
			panic(ErrAborted)
		}
		if cancel != nil && cancel() {
			return Message{}
		}
		if d > 0 && !time.Now().Before(deadline) {
			return Message{}
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) get(src, tag int, blocking bool) Message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if matches(m, src, tag) {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		// Drain-then-abort: messages delivered before the abort are
		// still consumable (so receivers already holding their answer
		// finish cleanly); only a receive that would otherwise wait —
		// or poll forever — aborts.
		if mb.aborted {
			panic(ErrAborted)
		}
		if !blocking {
			return Message{}
		}
		mb.cond.Wait()
	}
}

// getCancel is get with an optional deadline (d <= 0 means none) and an
// optional cancel predicate: it returns the zero Message (valid ==
// false) if no match arrives before the deadline passes or cancel
// reports true.  cancel runs under mb.mu and is rechecked on every
// wakeup.  Abort still panics with ErrAborted, after draining delivered
// matches.
func (mb *mailbox) getCancel(src, tag int, d time.Duration, cancel func() bool) Message {
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
		// sync.Cond has no timed wait; a timer that takes the lock before
		// broadcasting cannot fire between the waiter's deadline check and
		// its cond.Wait, so the wakeup is never lost.
		timer := time.AfterFunc(d, func() {
			mb.mu.Lock()
			mb.mu.Unlock() //nolint:staticcheck // empty critical section is the point
			mb.cond.Broadcast()
		})
		defer timer.Stop()
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if matches(m, src, tag) {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		if mb.aborted {
			panic(ErrAborted)
		}
		if cancel != nil && cancel() {
			return Message{}
		}
		if d > 0 && !time.Now().Before(deadline) {
			return Message{}
		}
		mb.cond.Wait()
	}
}

// abort wakes blocked receivers: they drain queued matches and then
// panic with ErrAborted instead of waiting forever.
func (mb *mailbox) abort() {
	mb.mu.Lock()
	mb.aborted = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// wake rouses blocked receivers without changing mailbox state, so
// getCancel waiters re-evaluate their cancel predicate.  Taking the
// lock first means a waiter between its cancel check and cond.Wait
// cannot miss the broadcast.
func (mb *mailbox) wake() {
	mb.mu.Lock()
	mb.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	mb.cond.Broadcast()
}

func (mb *mailbox) probe(src, tag int) bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for _, m := range mb.queue {
		if matches(m, src, tag) {
			return true
		}
	}
	return false
}

// ErrAborted is the panic value delivered to collective operations on a
// poisoned group and to receives on an aborted world.  Callers that
// poison a group should recover it.
var ErrAborted = fmt.Errorf("mpi: group aborted")

// Abort poisons the world: every locally hosted mailbox wakes its
// blocked receivers with ErrAborted (after draining already-delivered
// matches), and every group created through GroupOf is poisoned.  It is
// idempotent and safe to call from any goroutine; transports call it
// when a peer connection dies.
func (w *World) Abort() {
	if !w.aborted.CompareAndSwap(false, true) {
		return
	}
	w.groups.Range(func(_, v any) bool {
		v.(Group).Poison()
		return true
	})
	for _, box := range w.boxes {
		if box != nil {
			box.abort()
		}
	}
}

// Aborted reports whether the world has been aborted.
func (w *World) Aborted() bool { return w.aborted.Load() }

// RankFailure identifies a world rank diagnosed as failed and why.  It
// is recorded by Fail (local detection: liveness timeout, receive
// deadline, lost connection) or by a reason-carrying poison frame from
// the rank that detected the failure, and is retrievable via
// World.Failure for per-rank diagnosis after an abort.
type RankFailure struct {
	Rank   int
	Reason string
}

func (f *RankFailure) Error() string {
	return fmt.Sprintf("mpi: rank %d failed: %s", f.Rank, f.Reason)
}

// Fail records rank as failed (the first recorded failure wins),
// propagates a reason-carrying poison frame to every remote rank so
// their worlds learn the diagnosis, and aborts this world.  Safe from
// any goroutine and idempotent.
func (w *World) Fail(rank int, reason string) {
	first := w.recordFailure(rank, reason)
	if first && w.tr != nil && !w.closed.Load() {
		src := 0
		if len(w.local) > 0 {
			src = w.local[0]
		}
		for r, box := range w.boxes {
			if box == nil {
				// Best-effort: the connection may itself be the casualty.
				w.tr.Send(src, r, collectiveTag, groupPoison{Rank: rank, Reason: reason})
			}
		}
	}
	w.Abort()
}

// recordFailure stores the first failure diagnosis and reports whether
// this call was the one that stored it.
func (w *World) recordFailure(rank int, reason string) bool {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	if w.failure != nil {
		return false
	}
	w.failure = &RankFailure{Rank: rank, Reason: reason}
	return true
}

// Failure returns the recorded rank failure, or nil if the world never
// diagnosed one (including worlds aborted without an attributed cause).
func (w *World) Failure() *RankFailure {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failure
}

// SetRecover switches the world to degraded-membership recovery:
// detected failures of non-critical ranks feed Evict instead of Fail,
// so the survivors keep running over the live members.  critical lists
// ranks whose death remains fatal (for the SIP: the master and the I/O
// servers).  Call it before ranks start communicating.
func (w *World) SetRecover(critical ...int) {
	w.evictMu.Lock()
	if w.critical == nil {
		w.critical = map[int]bool{}
	}
	if w.evicted == nil {
		w.evicted = map[int]string{}
	}
	for _, r := range critical {
		w.critical[r] = true
	}
	w.evictMu.Unlock()
	w.recovering.Store(true)
}

// Recovering reports whether SetRecover switched this world to
// degraded-membership recovery.
func (w *World) Recovering() bool { return w.recovering.Load() }

// Evictable reports whether rank's death can be survived: recovery is
// on and the rank is not critical.
func (w *World) Evictable(rank int) bool {
	if !w.recovering.Load() {
		return false
	}
	w.evictMu.Lock()
	defer w.evictMu.Unlock()
	return !w.critical[rank]
}

// Evict marks rank as permanently dead without poisoning the
// survivors: sends to it become no-ops, inbound frames from it are
// dropped, groups re-form over the live members, and every blocked
// receiver wakes so eviction-aware waits (RecvUntil) can recheck their
// cancel condition.  Eviction is final — a falsely evicted rank that
// later wakes up is firewalled, never re-admitted.  The first eviction
// of a rank wins; evicting a critical rank (or a rank of a
// non-recovering world) falls back to Fail.  Safe from any goroutine.
func (w *World) Evict(rank int, reason string) {
	if !w.Evictable(rank) {
		w.Fail(rank, reason)
		return
	}
	w.evictMu.Lock()
	if _, dup := w.evicted[rank]; dup {
		w.evictMu.Unlock()
		return
	}
	w.evicted[rank] = reason
	w.evictMu.Unlock()
	w.evictGen.Add(1)
	// Tell the remote worlds (best-effort: the dead rank's connection
	// may be the casualty) so every survivor converges on one view.
	// The evicted rank gets the notice too: if it is actually alive it
	// fails itself fast instead of wedging behind the firewall.
	if w.tr != nil && !w.closed.Load() {
		src := 0
		if len(w.local) > 0 {
			src = w.local[0]
		}
		for r, box := range w.boxes {
			if box == nil {
				w.tr.Send(src, r, collectiveTag, evictNotice{Rank: rank, Reason: reason})
			}
		}
	}
	// Re-form groups over the survivors.
	w.groups.Range(func(_, v any) bool {
		if g, ok := v.(interface{ evict(rank int) }); ok {
			g.evict(rank)
		}
		return true
	})
	// Wake blocked receivers: messages from the dead rank will never
	// arrive, and RecvUntil waiters must observe the new membership.
	// The evicted rank's own mailbox — when it lives in this world, as in
	// an in-process pool — is aborted instead, so its goroutines panic
	// with ErrAborted and unwind rather than wait forever behind the
	// firewall (the in-process analogue of the zombie self-abort in
	// deliver).
	for r, box := range w.boxes {
		if box == nil {
			continue
		}
		if r == rank {
			box.abort()
		} else {
			box.wake()
		}
	}
}

// IsEvicted reports whether rank has been evicted.
func (w *World) IsEvicted(rank int) bool {
	if !w.recovering.Load() {
		return false
	}
	w.evictMu.Lock()
	defer w.evictMu.Unlock()
	_, ok := w.evicted[rank]
	return ok
}

// Evicted returns a copy of the evicted ranks and their reasons.
func (w *World) Evicted() map[int]string {
	w.evictMu.Lock()
	defer w.evictMu.Unlock()
	if len(w.evicted) == 0 {
		return nil
	}
	out := make(map[int]string, len(w.evicted))
	for r, reason := range w.evicted {
		out[r] = reason
	}
	return out
}

// EvictStamp returns a counter that increases on every membership
// change (eviction or join).  Waiters snapshot it before blocking and
// cancel when it changes.
func (w *World) EvictStamp() uint64 { return w.evictGen.Load() }

// SetLatent marks ranks as provisioned but not yet active: spare slots
// of a long-running world that Join activates later.  Sends to a latent
// rank are dropped, liveness does not monitor it, and it is expected to
// stay silent.  Call before ranks start communicating.
func (w *World) SetLatent(ranks ...int) {
	w.latentMu.Lock()
	if w.latent == nil {
		w.latent = map[int]bool{}
	}
	for _, r := range ranks {
		w.latent[r] = true
	}
	w.latentMu.Unlock()
}

// IsLatent reports whether rank is provisioned but not yet joined.
func (w *World) IsLatent(rank int) bool {
	w.latentMu.Lock()
	defer w.latentMu.Unlock()
	return w.latent[rank]
}

// Latent returns the latent ranks in ascending order.
func (w *World) Latent() []int {
	w.latentMu.Lock()
	defer w.latentMu.Unlock()
	out := make([]int, 0, len(w.latent))
	for r := 0; r < w.n; r++ {
		if w.latent[r] {
			out = append(out, r)
		}
	}
	return out
}

// Join activates a latent rank — the inverse of Evict, reusing its
// membership-convergence machinery: the membership stamp bumps, remote
// worlds get a joinNotice so every endpoint converges on the new
// membership, and blocked RecvUntil waiters wake to observe it.  It
// reports whether the rank was latent (the first join wins; joining an
// active or unknown rank is a no-op).  Safe from any goroutine.
func (w *World) Join(rank int) bool {
	if !w.applyJoin(rank) {
		return false
	}
	// Tell the remote worlds (best-effort, mirroring Evict's fan-out)
	// so every endpoint admits the newcomer's traffic and sends reach
	// it instead of being dropped as latent.
	if w.tr != nil && !w.closed.Load() {
		src := 0
		if len(w.local) > 0 {
			src = w.local[0]
		}
		for r, box := range w.boxes {
			if box == nil {
				w.tr.Send(src, r, collectiveTag, joinNotice{Rank: rank})
			}
		}
	}
	return true
}

// applyJoin performs the local half of a join: clear the latent mark,
// reset the rank's liveness clock (it was legitimately silent until
// now), bump the membership stamp, and wake blocked receivers so
// membership-aware waits recheck their cancel condition.
func (w *World) applyJoin(rank int) bool {
	w.latentMu.Lock()
	if !w.latent[rank] {
		w.latentMu.Unlock()
		return false
	}
	delete(w.latent, rank)
	w.latentMu.Unlock()
	if l := w.live.Load(); l != nil {
		l.note(rank)
	}
	w.evictGen.Add(1)
	for _, box := range w.boxes {
		if box != nil {
			box.wake()
		}
	}
	return true
}

// markDeparted records remote ranks that announced a clean shutdown,
// so the transport-level disconnect that follows is recognized as
// teardown rather than a rank failure.
func (w *World) markDeparted(ranks []int) {
	w.departMu.Lock()
	if w.departed == nil {
		w.departed = map[int]bool{}
	}
	for _, r := range ranks {
		w.departed[r] = true
	}
	w.departMu.Unlock()
}

// Departed reports whether rank announced a clean shutdown.
func (w *World) Departed(rank int) bool {
	w.departMu.Lock()
	defer w.departMu.Unlock()
	return w.departed[rank]
}

// Close tears the world down, closing its transport (if any).  Peer
// disconnects observed after Close are part of normal teardown and do
// not abort the world.
//
// A cleanly closing world first announces its departure to the remote
// endpoints (best-effort), so a rank that finishes its part of the
// protocol early does not read as a crashed peer to ranks still
// running.  An aborted world sends no farewell: its disconnect should
// surface as the failure it is.
func (w *World) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		return nil
	}
	if l := w.live.Load(); l != nil {
		l.stopOnce.Do(func() { close(l.stop) })
	}
	if w.tr != nil {
		if !w.aborted.Load() {
			src := 0
			if len(w.local) > 0 {
				src = w.local[0]
			}
			bye := byeNotice{Ranks: w.local}
			for r, box := range w.boxes {
				if box == nil {
					w.tr.Send(src, r, collectiveTag, bye)
				}
			}
		}
		return w.tr.Close()
	}
	return nil
}
