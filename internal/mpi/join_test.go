package mpi

import (
	"testing"
	"time"
)

// TestLatentSendsDropped: sends to a latent (not yet joined) rank must
// vanish silently, like sends to an evicted rank.
func TestLatentSendsDropped(t *testing.T) {
	w := NewWorld(3)
	w.SetLatent(2)
	w.Comm(0).Send(2, 7, "before join")
	if w.Comm(2).Probe(0, 7) {
		t.Fatal("send to latent rank was delivered")
	}
	if w.Aborted() {
		t.Fatal("send to latent rank aborted the world")
	}
	if got := w.Latent(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Latent() = %v, want [2]", got)
	}
}

// TestJoinActivates: Join clears the latent mark, bumps the membership
// stamp, and subsequent sends are delivered.
func TestJoinActivates(t *testing.T) {
	w := NewWorld(3)
	w.SetLatent(2)
	stamp := w.EvictStamp()
	if !w.Join(2) {
		t.Fatal("Join(2) reported the rank was not latent")
	}
	if w.IsLatent(2) {
		t.Fatal("rank 2 still latent after Join")
	}
	if w.EvictStamp() == stamp {
		t.Fatal("Join did not bump the membership stamp")
	}
	if w.Join(2) {
		t.Fatal("second Join of an active rank succeeded")
	}
	w.Comm(0).Send(2, 7, "after join")
	if m := w.Comm(2).Recv(0, 7); m.Data != "after join" {
		t.Fatalf("joined rank received %v", m.Data)
	}
}

// TestJoinWakesRecvUntil: a receiver blocked with a membership-stamp
// cancel condition must wake when a rank joins, not hang until the
// next message.
func TestJoinWakesRecvUntil(t *testing.T) {
	w := NewWorld(2)
	w.SetLatent(1)
	stamp := w.EvictStamp()
	done := make(chan bool, 1)
	go func() {
		_, ok := w.Comm(0).RecvUntil(1, 9, 0,
			func() bool { return w.EvictStamp() != stamp })
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond) // let the receiver block
	w.Join(1)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("RecvUntil returned a message that was never sent")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RecvUntil still blocked after join")
	}
}

// TestJoinPropagates: a join on one distributed world must reach the
// other endpoints via joinNotice, so every world converges on the grown
// membership and delivers traffic to (and from) the newcomer.
func TestJoinPropagates(t *testing.T) {
	worlds := routerWorlds(t, 3)
	for _, w := range worlds {
		w.SetLatent(2)
	}
	worlds[0].Join(2)
	deadline := time.Now().Add(5 * time.Second)
	for worlds[1].IsLatent(2) || worlds[2].IsLatent(2) {
		if time.Now().After(deadline) {
			t.Fatalf("join never propagated: w1 latent=%v w2 latent=%v",
				worlds[1].IsLatent(2), worlds[2].IsLatent(2))
		}
		time.Sleep(time.Millisecond)
	}
	// Traffic now flows both ways through the joined rank.
	worlds[1].Comm(1).Send(2, 7, "hello")
	if m := worlds[2].Comm(2).Recv(1, 7); m.Data != "hello" {
		t.Fatalf("joined rank received %v", m.Data)
	}
	worlds[2].Comm(2).Send(1, 8, "ack")
	if m := worlds[1].Comm(1).Recv(2, 8); m.Data != "ack" {
		t.Fatalf("rank 1 received %v", m.Data)
	}
}

// TestJoinThenEvict: a joined rank is a full member — it can later be
// evicted like any other, and the membership stamp tracks both changes.
func TestJoinThenEvict(t *testing.T) {
	w := NewWorld(3)
	w.SetRecover(0)
	w.SetLatent(2)
	s0 := w.EvictStamp()
	w.Join(2)
	s1 := w.EvictStamp()
	if s1 == s0 {
		t.Fatal("join did not bump the stamp")
	}
	w.Evict(2, "test")
	if w.EvictStamp() == s1 {
		t.Fatal("evict did not bump the stamp")
	}
	if !w.IsEvicted(2) {
		t.Fatal("joined rank could not be evicted")
	}
}

// TestLatentLivenessIgnored: liveness must not declare a latent rank
// dead for being silent — only joined ranks are monitored.
func TestLatentLivenessIgnored(t *testing.T) {
	worlds := routerWorlds(t, 3)
	for _, w := range worlds {
		w.SetRecover(0)
		w.SetLatent(2)
	}
	if err := worlds[0].StartLiveness(Liveness{
		Interval: 5 * time.Millisecond, Timeout: 25 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	// Keep rank 1 "alive" from rank 0's view via its own heartbeats.
	if err := worlds[1].StartLiveness(Liveness{
		Interval: 5 * time.Millisecond, Timeout: 25 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // several timeouts worth of silence
	if worlds[0].IsEvicted(2) {
		t.Fatalf("latent rank was evicted for silence: %v", worlds[0].Evicted())
	}
	if worlds[0].Aborted() {
		t.Fatal("latent silence aborted the world")
	}
}
