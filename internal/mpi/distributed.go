package mpi

import (
	"fmt"

	"repro/internal/mpi/transport"
	"repro/internal/wire"
)

// NewDistributedWorld creates a world of n ranks in which only the
// ranks listed in local are hosted by this process; messages to every
// other rank go through tr, and inbound traffic from tr is delivered to
// the local mailboxes.  The transport is started (and later closed by
// World.Close); the caller must not Start or Close it directly.
//
// Payload types crossing a serializing transport must be registered
// with internal/wire.
func NewDistributedWorld(n int, local []int, tr transport.Transport) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", n)
	}
	if len(local) == 0 {
		return nil, fmt.Errorf("mpi: no local ranks")
	}
	if tr == nil {
		return nil, fmt.Errorf("mpi: distributed world needs a transport")
	}
	w := &World{n: n, boxes: make([]*mailbox, n), tr: tr}
	for _, r := range local {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("mpi: local rank %d out of range [0,%d)", r, n)
		}
		if w.boxes[r] != nil {
			return nil, fmt.Errorf("mpi: local rank %d listed twice", r)
		}
		w.boxes[r] = newMailbox()
	}
	if err := tr.Start(w.deliver, w.peerDown); err != nil {
		return nil, err
	}
	return w, nil
}

// deliver is the transport's receive handler: it routes one inbound
// message to the destination rank's mailbox.  Poison frames abort the
// world instead of being enqueued.
func (w *World) deliver(src, dst, tag int, data any) {
	if _, ok := data.(groupPoison); ok {
		if !w.closed.Load() {
			w.Abort()
		}
		return
	}
	box := w.boxes[dst]
	if dst < 0 || dst >= w.n || box == nil {
		// Misrouted frame; drop rather than crash the reader.
		return
	}
	box.put(Message{Source: src, Tag: tag, Data: data})
}

// peerDown is the transport's failure callback: a lost peer outside
// clean shutdown means pending receives can never complete, so the
// world aborts.
func (w *World) peerDown(peer int, err error) {
	if !w.closed.Load() {
		w.Abort()
	}
}

// Wire ids for the collective messages (block 16..31, see
// internal/wire).
const (
	wireIDGroupContrib = 16
	wireIDGroupResult  = 17
	wireIDGroupPoison  = 18
)

func init() {
	wire.Register(wireIDGroupContrib,
		func(e *wire.Encoder, m groupContrib) {
			e.String(m.Key)
			e.Int(m.Gen)
			e.Float64(m.V)
		},
		func(d *wire.Decoder) groupContrib {
			return groupContrib{Key: d.String(), Gen: d.Int(), V: d.Float64()}
		})
	wire.Register(wireIDGroupResult,
		func(e *wire.Encoder, m groupResult) {
			e.String(m.Key)
			e.Int(m.Gen)
			e.Float64(m.V)
		},
		func(d *wire.Decoder) groupResult {
			return groupResult{Key: d.String(), Gen: d.Int(), V: d.Float64()}
		})
	wire.Register(wireIDGroupPoison,
		func(e *wire.Encoder, m groupPoison) { e.String(m.Key) },
		func(d *wire.Decoder) groupPoison { return groupPoison{Key: d.String()} })
}
