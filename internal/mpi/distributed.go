package mpi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mpi/transport"
	"repro/internal/wire"
)

// NewDistributedWorld creates a world of n ranks in which only the
// ranks listed in local are hosted by this process; messages to every
// other rank go through tr, and inbound traffic from tr is delivered to
// the local mailboxes.  The transport is started (and later closed by
// World.Close); the caller must not Start or Close it directly.
//
// Payload types crossing a serializing transport must be registered
// with internal/wire.
func NewDistributedWorld(n int, local []int, tr transport.Transport) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", n)
	}
	if len(local) == 0 {
		return nil, fmt.Errorf("mpi: no local ranks")
	}
	if tr == nil {
		return nil, fmt.Errorf("mpi: distributed world needs a transport")
	}
	w := &World{n: n, boxes: make([]*mailbox, n), tr: tr}
	for _, r := range local {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("mpi: local rank %d out of range [0,%d)", r, n)
		}
		if w.boxes[r] != nil {
			return nil, fmt.Errorf("mpi: local rank %d listed twice", r)
		}
		w.boxes[r] = newMailbox()
		w.local = append(w.local, r)
	}
	if err := tr.Start(w.deliver, w.peerDown); err != nil {
		return nil, err
	}
	return w, nil
}

// deliver is the transport's receive handler: it routes one inbound
// message to the destination rank's mailbox.  Poison frames abort the
// world (recording the failure diagnosis they carry, if any) and
// heartbeat frames refresh liveness state; neither is enqueued.
func (w *World) deliver(src, dst, tag int, data any) {
	if w.IsEvicted(src) {
		// Eviction is final: even if the rank was evicted falsely and is
		// still limping along, none of its frames — heartbeats and
		// poison included — may reach the survivors, or a zombie's
		// error-path teardown would abort the run it was evicted from.
		return
	}
	if n, ok := data.(evictNotice); ok {
		for _, r := range w.local {
			if r == n.Rank {
				// The peers evicted one of *our* ranks: we are the zombie.
				// Abort locally — without broadcasting poison, which could
				// outrace the evict notice to a survivor — so this process
				// terminates instead of wedging behind the firewall.
				w.recordFailure(n.Rank, "evicted by peers: "+n.Reason)
				w.Abort()
				return
			}
		}
		w.Evict(n.Rank, n.Reason)
		return
	}
	if n, ok := data.(joinNotice); ok {
		// A peer activated a latent rank (World.Join): converge on the
		// grown membership.
		w.applyJoin(n.Rank)
		return
	}
	if b, ok := data.(byeNotice); ok {
		w.markDeparted(b.Ranks)
		return
	}
	if l := w.live.Load(); l != nil {
		l.note(src)
		if hb, ok := data.(heartbeatMsg); ok {
			l.note(hb.Ranks...)
		}
	}
	if _, ok := data.(heartbeatMsg); ok {
		return
	}
	if w.handleClock(src, dst, data) {
		return
	}
	if p, ok := data.(groupPoison); ok {
		if !w.closed.Load() {
			if p.Rank >= 0 {
				w.recordFailure(p.Rank, p.Reason)
			}
			w.Abort()
		}
		return
	}
	box := w.boxes[dst]
	if dst < 0 || dst >= w.n || box == nil {
		// Misrouted frame; drop rather than crash the reader.
		return
	}
	box.put(Message{Source: src, Tag: tag, Data: data})
}

// peerDown is the transport's failure callback: a lost peer outside
// clean shutdown means pending receives can never complete, so the
// world records the failure and aborts.
func (w *World) peerDown(peer int, err error) {
	if w.closed.Load() {
		return
	}
	if peer >= 0 {
		if w.Departed(peer) {
			// The peer said goodbye before the disconnect: clean shutdown.
			return
		}
		reason := fmt.Sprintf("connection lost: %v", err)
		if w.Evictable(peer) {
			w.Evict(peer, reason)
			return
		}
		w.Fail(peer, reason)
	} else {
		w.Abort()
	}
}

// ---------------------------------------------------------------------
// Liveness (heartbeat-based failure detection)

// heartbeatTag is the reserved tag for liveness frames.  Like
// collectiveTag it is negative so application tags can never collide;
// heartbeat frames are intercepted before reaching any mailbox, so the
// tag never surfaces.
const heartbeatTag = -3

// heartbeatMsg announces that the sending endpoint — and every rank it
// hosts — is alive.
type heartbeatMsg struct {
	Ranks []int
}

// Liveness configures heartbeat-based failure detection on a
// distributed world.  The world periodically announces its local ranks
// to every remote rank and watches inbound traffic (any message counts,
// not just heartbeats); a remote rank silent for longer than Timeout is
// declared failed: the world records a RankFailure naming it, notifies
// the other ranks, and aborts.
//
// Timeout bounds detection latency for a crashed or wedged peer, and
// must also cover startup skew between processes plus the longest
// legitimate network stall — heartbeats keep flowing while peers
// compute, so it need not cover computation time.
type Liveness struct {
	// Interval between heartbeat rounds.  Must be positive.
	Interval time.Duration
	// Timeout is the silence bound after which a remote rank is declared
	// failed (default 8 * Interval).
	Timeout time.Duration
	// OnDown, if set, is invoked once with the failed rank and diagnosis
	// before the world aborts (observability hook).
	OnDown func(rank int, reason string)
}

// liveness is the running state behind StartLiveness.
type liveness struct {
	lv       Liveness
	stop     chan struct{}
	stopOnce sync.Once

	mu    sync.Mutex
	heard map[int]time.Time
}

func (l *liveness) note(ranks ...int) {
	now := time.Now()
	l.mu.Lock()
	for _, r := range ranks {
		l.heard[r] = now
	}
	l.mu.Unlock()
}

func (l *liveness) lastHeard(rank int, fallback time.Time) time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t, ok := l.heard[rank]; ok {
		return t
	}
	return fallback
}

// StartLiveness begins heartbeat-based failure detection on a
// distributed world.  It may be called at most once, any time after
// NewDistributedWorld; detection stops when the world is closed or
// aborts.
func (w *World) StartLiveness(lv Liveness) error {
	if w.tr == nil {
		return fmt.Errorf("mpi: liveness requires a distributed world")
	}
	if lv.Interval <= 0 {
		return fmt.Errorf("mpi: liveness interval %v must be positive", lv.Interval)
	}
	if lv.Timeout <= 0 {
		lv.Timeout = 8 * lv.Interval
	}
	l := &liveness{lv: lv, stop: make(chan struct{}), heard: map[int]time.Time{}}
	if !w.live.CompareAndSwap(nil, l) {
		return fmt.Errorf("mpi: liveness already started")
	}
	go w.monitor(l)
	return nil
}

// monitor is the liveness loop: each round it heartbeats every remote
// rank and checks how long each has been silent.  Ranks not yet heard
// from are measured against the monitor's start (startup grace of one
// Timeout).
func (w *World) monitor(l *liveness) {
	start := time.Now()
	ticker := time.NewTicker(l.lv.Interval)
	defer ticker.Stop()
	src := w.local[0]
	var remotes []int
	for r, box := range w.boxes {
		if box == nil {
			remotes = append(remotes, r)
		}
	}
	targets := make([]int, 0, len(remotes))
	hb := heartbeatMsg{Ranks: w.local}
	for {
		select {
		case <-l.stop:
			return
		case <-ticker.C:
		}
		if w.closed.Load() || w.aborted.Load() {
			return
		}
		targets = targets[:0]
		for _, r := range remotes {
			if w.Departed(r) || w.IsLatent(r) {
				continue
			}
			targets = append(targets, r)
		}
		// Best-effort: failures surface through peerDown/silence.  Over a
		// multicast-capable transport the round's heartbeat is encoded
		// once and shared across every peer queue (heartbeatMsg is
		// immutable, so pointer-sharing fallbacks need no clone either).
		if mc := transport.MulticasterFor(w.tr); mc != nil {
			mc.SendMulti(src, targets, heartbeatTag, hb)
		} else {
			for _, r := range targets {
				w.tr.Send(src, r, heartbeatTag, hb)
			}
		}
		now := time.Now()
		for _, r := range remotes {
			if w.IsEvicted(r) {
				continue // already dead; keep watching the others
			}
			if w.Departed(r) {
				continue // cleanly shut down; silence is expected
			}
			if w.IsLatent(r) {
				continue // not yet joined; silence is expected
			}
			if silent := now.Sub(l.lastHeard(r, start)); silent > l.lv.Timeout {
				reason := fmt.Sprintf("no traffic for %v (liveness timeout %v)",
					silent.Round(time.Millisecond), l.lv.Timeout)
				if l.lv.OnDown != nil {
					l.lv.OnDown(r, reason)
				}
				if w.Evictable(r) {
					w.Evict(r, reason)
					continue // the run goes on degraded; keep monitoring
				}
				w.Fail(r, reason)
				return
			}
		}
	}
}

// evictNotice tells the receiving world that Rank has been evicted
// (World.Evict), so every survivor converges on the same degraded
// membership.  Like poison and heartbeat frames it is intercepted in
// deliver and never reaches a mailbox.
type evictNotice struct {
	Rank   int
	Reason string
}

// byeNotice announces a clean shutdown of the sending endpoint's local
// ranks (World.Close), so the disconnect that follows is teardown, not
// a failure.  Intercepted in deliver; never reaches a mailbox.
type byeNotice struct {
	Ranks []int
}

// joinNotice tells the receiving world that Rank has been activated
// (World.Join), the inverse of evictNotice: every endpoint converges on
// the grown membership.  Intercepted in deliver; never reaches a
// mailbox.
type joinNotice struct {
	Rank int
}

// Wire ids for the collective and liveness messages (block 16..31, see
// internal/wire).
const (
	wireIDGroupContrib = 16
	wireIDGroupResult  = 17
	wireIDGroupPoison  = 18
	wireIDHeartbeat    = 19
	wireIDEvictNotice  = 20
	wireIDByeNotice    = 21
	// 22, 23 carry the clock-sync ping/pong (clock.go).
	wireIDJoinNotice = 24
)

// decodeRanks reads a count-prefixed rank list, guarding the count
// against the remaining bytes so a corrupt or hostile frame latches a
// decode error instead of OOM-panicking in make.
func decodeRanks(d *wire.Decoder) []int {
	n := d.Int()
	if d.Err() != nil || n == 0 {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.Fail("rank list length %d exceeds remaining %d bytes", n, d.Remaining())
		return nil
	}
	rs := make([]int, n)
	for i := range rs {
		rs[i] = d.Int()
	}
	return rs
}

func init() {
	wire.Register(wireIDGroupContrib,
		func(e *wire.Encoder, m groupContrib) {
			e.String(m.Key)
			e.Int(m.Gen)
			e.Float64(m.V)
		},
		func(d *wire.Decoder) groupContrib {
			return groupContrib{Key: d.String(), Gen: d.Int(), V: d.Float64()}
		})
	wire.Register(wireIDGroupResult,
		func(e *wire.Encoder, m groupResult) {
			e.String(m.Key)
			e.Int(m.Gen)
			e.Float64(m.V)
		},
		func(d *wire.Decoder) groupResult {
			return groupResult{Key: d.String(), Gen: d.Int(), V: d.Float64()}
		})
	wire.Register(wireIDGroupPoison,
		func(e *wire.Encoder, m groupPoison) {
			e.String(m.Key)
			e.Int(m.Rank)
			e.String(m.Reason)
		},
		func(d *wire.Decoder) groupPoison {
			return groupPoison{Key: d.String(), Rank: d.Int(), Reason: d.String()}
		})
	wire.Register(wireIDEvictNotice,
		func(e *wire.Encoder, m evictNotice) {
			e.Int(m.Rank)
			e.String(m.Reason)
		},
		func(d *wire.Decoder) evictNotice {
			return evictNotice{Rank: d.Int(), Reason: d.String()}
		})
	wire.Register(wireIDByeNotice,
		func(e *wire.Encoder, m byeNotice) {
			e.Int(len(m.Ranks))
			for _, r := range m.Ranks {
				e.Int(r)
			}
		},
		func(d *wire.Decoder) byeNotice {
			return byeNotice{Ranks: decodeRanks(d)}
		})
	wire.Register(wireIDJoinNotice,
		func(e *wire.Encoder, m joinNotice) {
			e.Int(m.Rank)
		},
		func(d *wire.Decoder) joinNotice {
			return joinNotice{Rank: d.Int()}
		})
	wire.Register(wireIDHeartbeat,
		func(e *wire.Encoder, m heartbeatMsg) {
			e.Int(len(m.Ranks))
			for _, r := range m.Ranks {
				e.Int(r)
			}
		},
		func(d *wire.Decoder) heartbeatMsg {
			return heartbeatMsg{Ranks: decodeRanks(d)}
		})

	// Fuzz seed corpus: one encoded example per type registered above.
	wire.Sample(groupContrib{Key: "b:0:7", Gen: 2, V: 1.25})
	wire.Sample(groupResult{Key: "b:0:7", Gen: 2, V: -3})
	wire.Sample(groupPoison{Key: "b:0:7", Rank: 1, Reason: "test"})
	wire.Sample(evictNotice{Rank: 3, Reason: "liveness"})
	wire.Sample(byeNotice{Ranks: []int{4, 5}})
	wire.Sample(joinNotice{Rank: 6})
	wire.Sample(heartbeatMsg{Ranks: []int{0, 1, 2}})
}
