package mpi

import (
	"sync"
	"time"

	"repro/internal/mpi/transport"
	"repro/internal/wire"
)

// clockTag is the reserved tag for clock-synchronization frames.  Like
// heartbeatTag it is negative so application tags can never collide;
// clock frames are intercepted in deliver and never reach a mailbox.
const clockTag = -4

// clockPing asks a peer for its wall clock.  T0 is the sender's clock
// in unix µs at send time, echoed back in the pong.
type clockPing struct {
	T0 int64
}

// clockPong answers a clockPing: T0 is echoed from the ping, TPeer is
// the responder's wall clock in unix µs at response time.
type clockPong struct {
	T0    int64
	TPeer int64
}

// clockSample is one completed ping-pong measurement.
type clockSample struct {
	offsetUs int64 // peer clock − local clock
	rttUs    int64
	ok       bool
}

// clockState accumulates per-peer offset estimates; the lowest-RTT
// sample wins, since symmetric network delay is the estimator's only
// error term beyond clock granularity.
type clockState struct {
	mu      sync.Mutex
	samples map[int]clockSample
}

func (c *clockState) note(rank int, s clockSample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.samples == nil {
		c.samples = map[int]clockSample{}
	}
	if old, ok := c.samples[rank]; !ok || !old.ok || s.rttUs < old.rttUs {
		c.samples[rank] = s
	}
}

func (c *clockState) get(rank int) (clockSample, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.samples[rank]
	return s, ok && s.ok
}

// handleClock intercepts clock frames in deliver.  Pings are answered
// immediately on the reader goroutine (keeping the echo path short is
// what makes the RTT-halving estimate tight); pongs complete a sample.
func (w *World) handleClock(src, dst int, data any) bool {
	switch m := data.(type) {
	case clockPing:
		// Best-effort: a failed send surfaces through peerDown anyway.
		w.tr.Send(dst, src, clockTag, clockPong{T0: m.T0, TPeer: time.Now().UnixMicro()})
		return true
	case clockPong:
		t1 := time.Now().UnixMicro()
		rtt := t1 - m.T0
		if rtt < 0 {
			return true // clock stepped mid-flight; discard
		}
		w.clock.note(src, clockSample{offsetUs: m.TPeer - (m.T0+t1)/2, rttUs: rtt, ok: true})
		return true
	}
	return false
}

// SyncClocks estimates every remote rank's wall-clock offset by
// round-trip ping-pong on the reserved clock tag: offset = TPeer −
// (T0+T1)/2, keeping the lowest-RTT sample per peer.  rounds pings are
// sent to each remote rank, spaced by spacing, and the call waits one
// extra spacing for stragglers.  Best-effort and bounded: unreachable
// peers simply yield no sample (ClockOffsetUs then falls back to the
// transport handshake estimate).  No-op on an all-local world.
func (w *World) SyncClocks(rounds int, spacing time.Duration) {
	if w.tr == nil || rounds <= 0 {
		return
	}
	if spacing <= 0 {
		spacing = 10 * time.Millisecond
	}
	src := w.local[0]
	for i := 0; i < rounds; i++ {
		if w.closed.Load() || w.aborted.Load() {
			return
		}
		for r, box := range w.boxes {
			if box != nil || w.Departed(r) || w.IsEvicted(r) {
				continue
			}
			w.tr.Send(src, r, clockTag, clockPing{T0: time.Now().UnixMicro()})
		}
		time.Sleep(spacing)
	}
}

// ClockOffsetUs returns the best estimate of rank's wall-clock offset
// relative to this endpoint (rank clock − local clock, µs): the
// lowest-RTT ping-pong sample when SyncClocks ran, else the transport
// handshake sample, else 0 (shared clock or no estimate).
func (w *World) ClockOffsetUs(rank int) int64 {
	if s, ok := w.clock.get(rank); ok {
		return s.offsetUs
	}
	if w.tr != nil {
		if off, ok := transport.SampleClockOffsets(w.tr)[rank]; ok {
			return off
		}
	}
	return 0
}

// Wire ids for the clock frames (block 16..31, see internal/wire).
const (
	wireIDClockPing = 22
	wireIDClockPong = 23
)

func init() {
	wire.Register(wireIDClockPing,
		func(e *wire.Encoder, m clockPing) { e.Int(int(m.T0)) },
		func(d *wire.Decoder) clockPing { return clockPing{T0: int64(d.Int())} })
	wire.Register(wireIDClockPong,
		func(e *wire.Encoder, m clockPong) {
			e.Int(int(m.T0))
			e.Int(int(m.TPeer))
		},
		func(d *wire.Decoder) clockPong {
			return clockPong{T0: int64(d.Int()), TPeer: int64(d.Int())}
		})
	wire.Sample(clockPing{T0: 1_700_000_000_000_000})
	wire.Sample(clockPong{T0: 1_700_000_000_000_000, TPeer: 1_700_000_000_000_123})
}
