package mpi

import (
	"sync"
	"testing"
	"time"
)

// recoverWorlds builds router-backed distributed worlds with recovery
// enabled (rank 0 critical, like the SIP master).
func recoverWorlds(t *testing.T, n int) []*World {
	t.Helper()
	worlds := routerWorlds(t, n)
	for _, w := range worlds {
		w.SetRecover(0)
	}
	return worlds
}

// TestEvictSendsBecomeNoops: sends to an evicted rank must vanish
// silently instead of aborting the sender's world.
func TestEvictSendsBecomeNoops(t *testing.T) {
	worlds := recoverWorlds(t, 3)
	worlds[0].Evict(2, "test")
	worlds[0].Comm(0).Send(2, 7, "into the void")
	if worlds[0].Aborted() {
		t.Fatal("send to evicted rank aborted the world")
	}
	if !worlds[0].IsEvicted(2) || worlds[0].IsEvicted(1) {
		t.Fatalf("evicted set wrong: %v", worlds[0].Evicted())
	}
}

// TestEvictPropagates: an eviction on one world must reach the other
// live worlds via evictNotice, and the evicted rank's own world must
// fail (it learns the survivors firewalled it).
func TestEvictPropagates(t *testing.T) {
	worlds := recoverWorlds(t, 3)
	worlds[0].Evict(2, "test eviction")
	deadline := time.Now().Add(5 * time.Second)
	for !worlds[1].IsEvicted(2) {
		if time.Now().After(deadline) {
			t.Fatal("eviction never propagated to rank 1's world")
		}
		time.Sleep(time.Millisecond)
	}
	for time.Now().Before(deadline) {
		if f := worlds[2].Failure(); f != nil {
			if f.Rank != 2 {
				t.Fatalf("evicted world blames rank %d, want 2: %v", f.Rank, f)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("evicted rank's own world never failed")
}

// TestEvictWakesRecvUntil: a receiver blocked on a rank that dies must
// wake with ok == false when the rank is evicted, not hang.
func TestEvictWakesRecvUntil(t *testing.T) {
	worlds := recoverWorlds(t, 2)
	done := make(chan bool, 1)
	go func() {
		_, ok := worlds[0].Comm(0).RecvUntil(1, 9, 0,
			func() bool { return worlds[0].IsEvicted(1) })
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond) // let the receiver block
	worlds[0].Evict(1, "test")
	select {
	case ok := <-done:
		if ok {
			t.Fatal("RecvUntil returned a message from a dead rank")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RecvUntil still blocked after eviction")
	}
}

// TestEvictCompletesCollective: a collective round blocked on a member
// that dies mid-round must complete over the survivors with the
// survivors' sum.
func TestEvictCompletesCollective(t *testing.T) {
	worlds := recoverWorlds(t, 4)
	var wg sync.WaitGroup
	sums := make([]float64, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := worlds[i].Comm(i).GroupOf(0, 1, 2, 3)
			sums[i] = g.AllreduceSum(float64(i + 1)) // rank 3 never joins
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the round block on rank 3
	worlds[0].Evict(3, "test")
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("collective still blocked after evicting the missing member")
	}
	for i, s := range sums {
		if s != 6 { // 1+2+3, rank 3's contribution never existed
			t.Errorf("rank %d: degraded allreduce = %g, want 6", i, s)
		}
	}
}

// TestEvictRootReelection: when the group root dies mid-round, the
// surviving members must re-elect the next live member and finish.
func TestEvictRootReelection(t *testing.T) {
	worlds := recoverWorlds(t, 4)
	var wg sync.WaitGroup
	sums := make([]float64, 4)
	for _, i := range []int{2, 3} {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := worlds[i].Comm(i).GroupOf(1, 2, 3)
			sums[i] = g.AllreduceSum(float64(10 * i)) // root rank 1 never joins
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // members block on the dead root
	worlds[2].Evict(1, "test")
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("collective still blocked after evicting the root")
	}
	for _, i := range []int{2, 3} {
		if sums[i] != 50 {
			t.Errorf("rank %d: re-elected allreduce = %g, want 50", i, sums[i])
		}
	}
}

// TestEvictCompletesSharedGroup covers the in-process (shared-memory)
// group implementation: evicting the straggler completes the round.
func TestEvictCompletesSharedGroup(t *testing.T) {
	w := NewWorld(3)
	w.SetRecover(0)
	var wg sync.WaitGroup
	sums := make([]float64, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i] = w.Comm(i).GroupOf(0, 1, 2).AllreduceSum(float64(i + 1))
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	w.Evict(2, "test")
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("shared group still blocked after eviction")
	}
	for i, s := range sums {
		if s != 3 {
			t.Errorf("rank %d: shared degraded allreduce = %g, want 3", i, s)
		}
	}
}

// TestEvictCriticalRankFails: evicting a critical rank must fall back
// to fail-fast, preserving PR 3 semantics for unsurvivable deaths.
func TestEvictCriticalRankFails(t *testing.T) {
	worlds := recoverWorlds(t, 2)
	worlds[1].Evict(0, "master died")
	if !worlds[1].Aborted() {
		t.Fatal("evicting the critical rank did not abort the world")
	}
	f := worlds[1].Failure()
	if f == nil || f.Rank != 0 {
		t.Fatalf("failure = %v, want rank 0", f)
	}
}

// TestEvictedSourceFirewalled: frames from an evicted rank — poison
// included — must never reach the survivors, so a zombie's teardown
// cannot abort the run it was evicted from.
func TestEvictedSourceFirewalled(t *testing.T) {
	worlds := recoverWorlds(t, 3)
	worlds[0].Evict(2, "test")
	worlds[2].Comm(2).Send(0, 7, "zombie data")
	worlds[2].Fail(2, "zombie teardown") // broadcasts poison frames
	time.Sleep(50 * time.Millisecond)
	if worlds[0].Aborted() {
		t.Fatal("zombie poison aborted a survivor")
	}
	if worlds[0].Comm(0).Probe(2, 7) {
		t.Fatal("zombie data frame reached a survivor's mailbox")
	}
}
