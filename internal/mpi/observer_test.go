package mpi

import (
	"sync"
	"testing"
)

type recordedSend struct {
	src, dst, tag, depth int
	data                 any
}

type recordingObserver struct {
	mu    sync.Mutex
	sends []recordedSend
}

func (o *recordingObserver) OnSend(src, dst, tag int, data any, depth int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sends = append(o.sends, recordedSend{src, dst, tag, depth, data})
}

func TestObserverOnSend(t *testing.T) {
	w := NewWorld(3)
	obs := &recordingObserver{}
	w.SetObserver(obs)

	// Two unreceived sends to rank 2: the observed queue depth grows.
	w.Comm(0).Send(2, 7, "a")
	w.Comm(1).Send(2, 7, "b")
	if len(obs.sends) != 2 {
		t.Fatalf("observed %d sends, want 2", len(obs.sends))
	}
	first, second := obs.sends[0], obs.sends[1]
	if first.src != 0 || first.dst != 2 || first.tag != 7 || first.data != "a" {
		t.Errorf("first send = %+v", first)
	}
	if first.depth != 1 || second.depth != 2 {
		t.Errorf("depths = %d, %d, want 1, 2", first.depth, second.depth)
	}

	// Draining and sending again reports the drained depth.
	w.Comm(2).Recv(AnySource, 7)
	w.Comm(2).Recv(AnySource, 7)
	w.Comm(0).Send(2, 9, "c")
	if got := obs.sends[2].depth; got != 1 {
		t.Errorf("post-drain depth = %d, want 1", got)
	}
}

func TestNoObserverSendsStillWork(t *testing.T) {
	w := NewWorld(2)
	w.Comm(0).Send(1, 1, 42)
	if m := w.Comm(1).Recv(0, 1); m.Data != 42 {
		t.Fatalf("recv = %+v", m)
	}
}
