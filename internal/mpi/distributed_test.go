package mpi

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/mpi/transport"
)

// routerWorlds builds one distributed world per rank, all wired through
// an in-process Router (pointer-sharing transport).
func routerWorlds(t *testing.T, n int) []*World {
	t.Helper()
	r := transport.NewRouter()
	eps := make([]*transport.Local, n)
	for i := range eps {
		eps[i] = r.Endpoint(i)
	}
	worlds := make([]*World, n)
	for i := range worlds {
		w, err := NewDistributedWorld(n, []int{i}, eps[i])
		if err != nil {
			t.Fatal(err)
		}
		worlds[i] = w
	}
	return worlds
}

// tcpWorlds builds one distributed world per rank over TCP loopback.
func tcpWorlds(t *testing.T, n int) []*World {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	worlds := make([]*World, n)
	for i := range worlds {
		tr, err := transport.NewTCP(transport.TCPConfig{Rank: i, Addrs: addrs, Listener: lns[i]})
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewDistributedWorld(n, []int{i}, tr)
		if err != nil {
			t.Fatal(err)
		}
		worlds[i] = w
	}
	t.Cleanup(func() {
		for _, w := range worlds {
			w.Close()
		}
	})
	return worlds
}

// transportCases runs a subtest against both distributed transports.
func transportCases(t *testing.T, n int, fn func(t *testing.T, worlds []*World)) {
	t.Run("router", func(t *testing.T) { fn(t, routerWorlds(t, n)) })
	t.Run("tcp", func(t *testing.T) { fn(t, tcpWorlds(t, n)) })
}

func TestDistributedSendRecv(t *testing.T) {
	transportCases(t, 2, func(t *testing.T, worlds []*World) {
		done := make(chan Message, 1)
		go func() {
			done <- worlds[1].Comm(1).Recv(0, 7)
		}()
		b := block.New(2, 2)
		copy(b.Data(), []float64{1, 2, 3, 4})
		worlds[0].Comm(0).Send(1, 7, b)
		m := <-done
		if m.Source != 0 || m.Tag != 7 {
			t.Fatalf("message envelope: %+v", m)
		}
		got := m.Data.(*block.Block)
		if got.At(1, 1) != 4 {
			t.Fatalf("block data: %v", got.Data())
		}
	})
}

func TestDistributedAllreduce(t *testing.T) {
	transportCases(t, 3, func(t *testing.T, worlds []*World) {
		sums := make([]float64, 3)
		var wg sync.WaitGroup
		for i := range worlds {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				g := worlds[i].Comm(i).GroupOf(0, 1, 2)
				// Two rounds, to exercise generation handling.
				g.AllreduceSum(float64(i))
				sums[i] = g.AllreduceSum(float64(10 * (i + 1)))
			}(i)
		}
		wg.Wait()
		for i, s := range sums {
			if s != 60 {
				t.Errorf("rank %d: allreduce = %g, want 60", i, s)
			}
		}
	})
}

// TestPoisonWakesBlockedRecv pins the abort contract of the tentpole:
// Group.Poison must wake a member blocked in Recv (or Request.Wait)
// promptly on every transport, instead of leaving it deadlocked on a
// message that will never arrive.
func TestPoisonWakesBlockedRecv(t *testing.T) {
	transportCases(t, 2, func(t *testing.T, worlds []*World) {
		recvDone := make(chan error, 1)
		waitDone := make(chan error, 1)
		catch := func(ch chan error, fn func()) {
			defer func() {
				if r := recover(); r != nil {
					err, _ := r.(error)
					ch <- err
					return
				}
				ch <- nil
			}()
			fn()
		}
		go catch(recvDone, func() {
			worlds[1].Comm(1).Recv(0, 99) // never sent
		})
		go catch(waitDone, func() {
			worlds[1].Comm(1).Irecv(0, 98).Wait() // never sent
		})
		time.Sleep(10 * time.Millisecond) // let both receivers block

		worlds[0].Comm(0).GroupOf(0, 1).Poison()

		for name, ch := range map[string]chan error{"Recv": recvDone, "Wait": waitDone} {
			select {
			case err := <-ch:
				if !errors.Is(err, ErrAborted) {
					t.Errorf("%s returned %v, want ErrAborted panic", name, err)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("%s still blocked after Poison", name)
			}
		}
	})
}

// TestPoisonWakesBlockedRecvLocalWorld covers the same contract on the
// default all-local world (the in-process fast path).
func TestPoisonWakesBlockedRecvLocalWorld(t *testing.T) {
	w := NewWorld(3)
	done := make(chan error, 1)
	go func() {
		defer func() {
			err, _ := recover().(error)
			done <- err
		}()
		w.Comm(2).Recv(0, 99) // never sent
		done <- nil
	}()
	time.Sleep(10 * time.Millisecond)

	w.Comm(1).GroupOf(1, 2).Poison()
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("Recv returned %v, want ErrAborted panic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked after Poison")
	}
}

// TestPoisonDrainsQueuedMessages: abort must not eat messages that were
// already delivered — receivers drain matches first, then abort.
func TestPoisonDrainsQueuedMessages(t *testing.T) {
	w := NewWorld(2)
	w.Comm(0).Send(1, 5, "before")
	w.Comm(0).GroupOf(0, 1).Poison()
	m := w.Comm(1).Recv(0, 5)
	if m.Data != "before" {
		t.Fatalf("queued message lost: %+v", m)
	}
	defer func() {
		if r := recover(); r != ErrAborted {
			t.Fatalf("second Recv: %v, want ErrAborted", r)
		}
	}()
	w.Comm(1).Recv(0, 5)
	t.Fatal("unreachable")
}

// TestSendOwnershipContract codifies the documented send contract under
// the race detector.
//
// In-process transports (the default world and the Router) share the
// payload pointer: the receiver takes ownership and the sender must not
// touch the data after Send.  The TCP transport serializes before Send
// returns, so the sender may reuse the payload immediately — and the
// receiver must observe the pre-mutation values.
func TestSendOwnershipContract(t *testing.T) {
	t.Run("local-ownership-transfer", func(t *testing.T) {
		w := NewWorld(2)
		b := block.New(4)
		b.Data()[0] = 1
		w.Comm(0).Send(1, 1, b)
		// Sender stops touching b here (the contract); the receiver is
		// now the only goroutine using it, so mutating is race-free.
		m := w.Comm(1).Recv(0, 1)
		got := m.Data.(*block.Block)
		if got != b {
			t.Fatal("in-process transport must share the pointer")
		}
		got.Data()[0] = 2
	})
	t.Run("tcp-copies", func(t *testing.T) {
		worlds := tcpWorlds(t, 2)
		received := make(chan *block.Block, 1)
		go func() {
			received <- worlds[1].Comm(1).Recv(0, 1).Data.(*block.Block)
		}()
		b := block.New(4)
		b.Data()[0] = 1
		worlds[0].Comm(0).Send(1, 1, b)
		// TCP serialized the payload synchronously: mutating now is
		// within the sender's rights and must not be visible remotely
		// (nor race with the receiver, which -race verifies).
		b.Data()[0] = 99
		got := <-received
		if got == b {
			t.Fatal("TCP transport must not share the pointer")
		}
		if got.Data()[0] != 1 {
			t.Fatalf("receiver saw post-send mutation: %v", got.Data())
		}
	})
}

// TestMulticastOwnershipContract codifies the Multicast contract on
// every transport class: the caller retains the payload, receivers that
// would share the sender's memory get clones, and a serializing
// transport copies by encoding — so mutating the original right after
// Multicast must never be visible to any receiver (-race verifies the
// absence of sharing).
func TestMulticastOwnershipContract(t *testing.T) {
	fanOut := func(t *testing.T, sender *Comm, recv func(rank int) *block.Block) {
		t.Helper()
		b := block.New(4)
		b.Data()[0] = 1
		sender.Multicast([]int{1, 2}, 5, b, func() any { return b.Clone() })
		// Caller retains ownership: this mutation must stay local.
		b.Data()[0] = 99
		for _, rank := range []int{1, 2} {
			got := recv(rank)
			if got == b {
				t.Fatalf("rank %d shares the sender's pointer", rank)
			}
			if got.Data()[0] != 1 {
				t.Fatalf("rank %d saw post-multicast mutation: %v", rank, got.Data())
			}
		}
	}
	t.Run("local", func(t *testing.T) {
		w := NewWorld(3)
		fanOut(t, w.Comm(0), func(rank int) *block.Block {
			return w.Comm(rank).Recv(0, 5).Data.(*block.Block)
		})
	})
	t.Run("router", func(t *testing.T) {
		worlds := routerWorlds(t, 3)
		fanOut(t, worlds[0].Comm(0), func(rank int) *block.Block {
			return worlds[rank].Comm(rank).Recv(0, 5).Data.(*block.Block)
		})
	})
	t.Run("tcp", func(t *testing.T) {
		worlds := tcpWorlds(t, 3)
		chans := make([]chan *block.Block, 3)
		for _, rank := range []int{1, 2} {
			rank := rank
			chans[rank] = make(chan *block.Block, 1)
			go func() {
				chans[rank] <- worlds[rank].Comm(rank).Recv(0, 5).Data.(*block.Block)
			}()
		}
		fanOut(t, worlds[0].Comm(0), func(rank int) *block.Block {
			return <-chans[rank]
		})
	})
}

// TestMulticastSkipsEvicted: the remote batch must exclude evicted
// ranks the same way Send no-ops on them, instead of resurrecting
// their connection.
func TestMulticastSkipsEvicted(t *testing.T) {
	worlds := tcpWorlds(t, 3)
	got := make(chan *block.Block, 1)
	go func() {
		got <- worlds[2].Comm(2).Recv(0, 5).Data.(*block.Block)
	}()
	worlds[0].Evict(1, "test")
	b := block.New(2)
	b.Data()[0] = 7
	worlds[0].Comm(0).Multicast([]int{1, 2}, 5, b, func() any { return b.Clone() })
	if v := (<-got).Data()[0]; v != 7 {
		t.Fatalf("surviving rank received %v, want 7", v)
	}
}
