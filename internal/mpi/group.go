package mpi

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Group is a subset of ranks supporting collective operations, like an
// MPI communicator.  Every member must call each collective operation
// exactly once per "round"; mixing operations across a round is a
// programming error.
type Group interface {
	// Barrier blocks until all group members have called it.
	Barrier()
	// AllreduceSum sums v across all members and returns the total to
	// each.  On a poisoned group it panics with ErrAborted instead of
	// blocking forever on members that will never arrive.
	AllreduceSum(v float64) float64
	// Poison aborts the group: members blocked in collectives panic
	// with ErrAborted, and future collective calls panic immediately.
	// Member-aware groups (GroupOf) also wake members blocked in
	// point-to-point receives.
	Poison()
}

// NewGroup creates an anonymous collective group of n participants.  It
// predates GroupOf and stays for callers that coordinate goroutines
// without caring which ranks they are; its Poison wakes only members
// blocked in collectives.  Prefer Comm.GroupOf, which works on
// distributed worlds and aborts blocked receives too.
func (w *World) NewGroup(n int) Group {
	if n < 1 {
		panic(fmt.Sprintf("mpi: group size %d < 1", n))
	}
	g := &sharedGroup{n: n}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// GroupOf returns the collective group over the given ranks for this
// member.  All members must pass the same rank list; ranks[0] acts as
// the root on distributed worlds.  Groups are cached: repeated calls
// with the same rank list return the same (or a protocol-compatible)
// group, and Abort poisons every group handed out.
func (c *Comm) GroupOf(ranks ...int) Group {
	if len(ranks) < 1 {
		panic("mpi: empty group")
	}
	member := false
	for _, r := range ranks {
		if r < 0 || r >= c.world.n {
			panic(fmt.Sprintf("mpi: group rank %d out of range [0,%d)", r, c.world.n))
		}
		member = member || r == c.rank
	}
	if !member {
		panic(fmt.Sprintf("mpi: rank %d is not in group %v", c.rank, ranks))
	}
	key := groupKey(c, ranks)
	if g, ok := c.world.groups.Load(key); ok {
		return g.(Group)
	}
	var g Group
	if c.world.tr == nil {
		g = newSharedGroup(c.world, ranks)
	} else {
		g = &commGroup{comm: c, ranks: append([]int(nil), ranks...)}
	}
	actual, _ := c.world.groups.LoadOrStore(key, g)
	return actual.(Group)
}

// groupKey builds the cache key for a group.  On a local world the
// group state is shared by all members, so the key is the rank set
// alone; on a distributed world each member keeps its own protocol
// state, so the member rank is part of the key.
func groupKey(c *Comm, ranks []int) string {
	var sb strings.Builder
	if c.world.tr != nil {
		fmt.Fprintf(&sb, "m%d|", c.rank)
	}
	sorted := append([]int(nil), ranks...)
	sort.Ints(sorted)
	for _, r := range sorted {
		fmt.Fprintf(&sb, "%d,", r)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// Shared-memory group

// sharedGroup is the in-process implementation: one shared state block
// under a mutex, members rendezvous through a condition variable.
type sharedGroup struct {
	n     int
	world *World // nil for anonymous NewGroup groups
	ranks []int  // nil for anonymous NewGroup groups

	mu       sync.Mutex
	cond     *sync.Cond
	gen      int
	count    int
	acc      float64
	result   float64
	poisoned bool
}

func newSharedGroup(w *World, ranks []int) *sharedGroup {
	g := &sharedGroup{n: len(ranks), world: w, ranks: append([]int(nil), ranks...)}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *sharedGroup) Barrier() { g.AllreduceSum(0) }

func (g *sharedGroup) AllreduceSum(v float64) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.poisoned {
		panic(ErrAborted)
	}
	gen := g.gen
	g.acc += v
	g.count++
	if g.count == g.n {
		g.result = g.acc
		g.acc = 0
		g.count = 0
		g.gen++
		g.cond.Broadcast()
		return g.result
	}
	for g.gen == gen && !g.poisoned {
		g.cond.Wait()
	}
	if g.gen == gen && g.poisoned {
		panic(ErrAborted)
	}
	return g.result
}

// evict removes a dead member (World.Evict): the group re-forms over
// the survivors, and a round blocked only on the dead member's arrival
// completes immediately.
func (g *sharedGroup) evict(rank int) {
	member := false
	for _, r := range g.ranks {
		member = member || r == rank
	}
	if !member {
		return
	}
	g.mu.Lock()
	g.n--
	if g.n > 0 && g.count >= g.n {
		g.result = g.acc
		g.acc = 0
		g.count = 0
		g.gen++
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Poison aborts the group.  Member-aware groups also abort the members'
// mailboxes, so a member blocked in Recv or Request.Wait wakes with
// ErrAborted instead of deadlocking on a message that will never come.
func (g *sharedGroup) Poison() {
	g.mu.Lock()
	g.poisoned = true
	g.mu.Unlock()
	g.cond.Broadcast()
	if g.world != nil {
		for _, r := range g.ranks {
			if box := g.world.boxes[r]; box != nil {
				box.abort()
			}
		}
	}
}

// ---------------------------------------------------------------------
// Message-based group (distributed worlds)

// collectiveTag is the reserved point-to-point tag carrying group
// traffic.  Negative so it can never collide with application tags
// (reply tags grow upward without bound).
const collectiveTag = -2

// groupContrib is a member's contribution for one reduction round,
// sent to the root.
type groupContrib struct {
	Key string  // group cache signature (sanity check)
	Gen int     // round number (sanity check)
	V   float64 // contribution
}

// groupResult is the reduced value the root returns to each member.
type groupResult struct {
	Key string
	Gen int
	V   float64
}

// groupPoison aborts the receiving process's world.  It is intercepted
// by the transport delivery path before reaching any mailbox.  A frame
// with Rank >= 0 also carries the sender's failure diagnosis, which the
// receiver records (first diagnosis wins) before aborting.
type groupPoison struct {
	Key    string
	Rank   int // failed rank, or -1 when the abort has no attributed cause
	Reason string
}

// commGroup is the distributed implementation: members send their
// contributions to the root (ranks[0]), which reduces and sends the
// result back.  Each member holds one commGroup instance; protocol
// state is this member's view only.
type commGroup struct {
	comm  *Comm
	ranks []int

	mu  sync.Mutex // serializes rounds if members share the handle
	gen int
}

func (g *commGroup) root() int { return g.ranks[0] }

func (g *commGroup) Barrier() { g.AllreduceSum(0) }

func (g *commGroup) AllreduceSum(v float64) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.comm.world.aborted.Load() {
		panic(ErrAborted)
	}
	key := groupKey(g.comm, g.ranks)
	gen := g.gen
	g.gen++
	if g.comm.world.Recovering() {
		return g.degradedRound(key, gen, v)
	}
	if g.comm.rank != g.root() {
		g.comm.Send(g.root(), collectiveTag, groupContrib{Key: key, Gen: gen, V: v})
		m := g.comm.Recv(g.root(), collectiveTag) // panics ErrAborted on abort
		res, ok := m.Data.(groupResult)
		if !ok || res.Gen != gen {
			panic(fmt.Sprintf("mpi: group %v rank %d: unexpected collective reply %#v in round %d",
				g.ranks, g.comm.rank, m.Data, gen))
		}
		return res.V
	}
	// Root: collect len(ranks)-1 contributions, reduce, reply.
	sum := v
	for i := 1; i < len(g.ranks); i++ {
		m := g.comm.Recv(AnySource, collectiveTag)
		c, ok := m.Data.(groupContrib)
		if !ok || c.Gen != gen {
			panic(fmt.Sprintf("mpi: group %v root: unexpected contribution %#v in round %d",
				g.ranks, m.Data, gen))
		}
		sum += c.V
	}
	for _, r := range g.ranks[1:] {
		g.comm.Send(r, collectiveTag, groupResult{Key: key, Gen: gen, V: sum})
	}
	return sum
}

// liveRanks returns the group members not yet evicted, in group order.
func (g *commGroup) liveRanks() []int {
	live := make([]int, 0, len(g.ranks))
	for _, r := range g.ranks {
		if !g.comm.world.IsEvicted(r) {
			live = append(live, r)
		}
	}
	return live
}

// degradedRound is one reduction round on a recovering world: the
// collective completes over the live members only.  The root is the
// first live member in group order; if the root is evicted mid-round the
// survivors re-elect and resend (the new root deduplicates by source).
// Two windows are deliberately fail-fast instead of recoverable: a
// reply or contribution with the wrong round number (a root died after
// releasing some members — the stragglers cannot rejoin a half-advanced
// round), and a member receiving traffic it cannot parse.  A split
// membership view (two members each believing the other dead) cannot
// converge here; higher layers bound such waits with receive deadlines.
func (g *commGroup) degradedRound(key string, gen int, v float64) float64 {
	w := g.comm.world
	self := g.comm.rank
	for {
		live := g.liveRanks()
		if len(live) == 1 && live[0] == self {
			return v // last one standing
		}
		root := live[0]
		if self != root {
			g.comm.Send(root, collectiveTag, groupContrib{Key: key, Gen: gen, V: v})
			m, ok := g.comm.RecvUntil(root, collectiveTag, 0,
				func() bool { return w.IsEvicted(root) })
			if !ok {
				continue // root died; re-elect and resend
			}
			res, isRes := m.Data.(groupResult)
			if !isRes || res.Gen != gen {
				w.Fail(root, fmt.Sprintf("mpi: group %v rank %d: unexpected collective reply %#v in round %d",
					g.ranks, self, m.Data, gen))
				panic(ErrAborted)
			}
			return res.V
		}
		// Root: collect one contribution from every other live member,
		// deduplicating resends by source, then fan the sum out.
		got := map[int]float64{}
		for {
			live = g.liveRanks()
			need := 0
			for _, r := range live {
				if r != self {
					if _, have := got[r]; !have {
						need++
					}
				}
			}
			if need == 0 {
				break
			}
			stamp := w.EvictStamp()
			m, ok := g.comm.RecvUntil(AnySource, collectiveTag, 0,
				func() bool { return w.EvictStamp() != stamp })
			if !ok {
				continue // membership changed; recount the pending set
			}
			c, isContrib := m.Data.(groupContrib)
			if !isContrib || c.Gen != gen {
				w.Fail(m.Source, fmt.Sprintf("mpi: group %v root %d: unexpected contribution %#v in round %d",
					g.ranks, self, m.Data, gen))
				panic(ErrAborted)
			}
			if w.IsEvicted(m.Source) {
				continue // arrived just before the firewall closed
			}
			got[m.Source] = c.V
		}
		sum := v
		for _, x := range got {
			sum += x
		}
		for r := range got {
			g.comm.Send(r, collectiveTag, groupResult{Key: key, Gen: gen, V: sum})
		}
		return sum
	}
}

// Poison aborts the whole group: remote members get a groupPoison frame
// (their transport delivery aborts their world), and the local world is
// aborted directly.
func (g *commGroup) Poison() {
	w := g.comm.world
	for _, r := range g.ranks {
		if r != g.comm.rank && w.boxes[r] == nil {
			// Best-effort: the connection may already be gone.
			w.tr.Send(g.comm.rank, r, collectiveTag,
				groupPoison{Key: groupKey(g.comm, g.ranks), Rank: -1})
		}
	}
	w.Abort()
}
