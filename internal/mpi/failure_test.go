package mpi

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi/transport"
)

func TestRecvTimeout(t *testing.T) {
	w := NewWorld(2)
	c := w.Comm(1)

	start := time.Now()
	if _, ok := c.RecvTimeout(0, 1, 30*time.Millisecond); ok {
		t.Fatal("RecvTimeout returned a message from an empty mailbox")
	}
	if d := time.Since(start); d < 25*time.Millisecond || d > 2*time.Second {
		t.Errorf("timeout fired after %v, want ~30ms", d)
	}

	// A message that is already queued is returned immediately.
	w.Comm(0).Send(1, 1, "hi")
	m, ok := c.RecvTimeout(0, 1, time.Minute)
	if !ok || m.Data != "hi" {
		t.Fatalf("RecvTimeout = %+v, %v", m, ok)
	}

	// A message arriving mid-wait completes the receive early.
	go func() {
		time.Sleep(20 * time.Millisecond)
		w.Comm(0).Send(1, 2, "late")
	}()
	m, ok = c.RecvTimeout(0, 2, 5*time.Second)
	if !ok || m.Data != "late" {
		t.Fatalf("RecvTimeout = %+v, %v", m, ok)
	}
}

func TestRecvTimeoutAbortPanics(t *testing.T) {
	w := NewWorld(2)
	c := w.Comm(1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		w.Abort()
	}()
	defer func() {
		if r := recover(); r != ErrAborted {
			t.Errorf("recovered %v, want ErrAborted", r)
		}
	}()
	c.RecvTimeout(0, 1, time.Minute)
	t.Error("RecvTimeout returned on an aborted world")
}

func TestRequestWaitTimeout(t *testing.T) {
	w := NewWorld(2)
	req := w.Comm(1).Irecv(0, 7)
	if req.Source() != 0 {
		t.Errorf("Source = %d, want 0", req.Source())
	}
	if _, ok := req.WaitTimeout(20 * time.Millisecond); ok {
		t.Fatal("WaitTimeout completed with no message")
	}
	// The request stays pending and completes once the message lands.
	w.Comm(0).Send(1, 7, 42)
	m, ok := req.WaitTimeout(time.Minute)
	if !ok || m.Data != 42 {
		t.Fatalf("WaitTimeout = %+v, %v", m, ok)
	}
}

// TestFailRecordsAndPropagates: Fail on one world aborts it with a
// diagnosis and carries the same diagnosis to the other worlds via
// poison frames.
func TestFailRecordsAndPropagates(t *testing.T) {
	transportCases(t, 2, func(t *testing.T, worlds []*World) {
		worlds[0].Fail(1, "boom")
		if !worlds[0].Aborted() {
			t.Error("Fail did not abort the failing world")
		}
		f := worlds[0].Failure()
		if f == nil || f.Rank != 1 || f.Reason != "boom" {
			t.Errorf("local failure = %+v", f)
		}
		if !strings.Contains(f.Error(), "rank 1") {
			t.Errorf("failure error %q does not name the rank", f.Error())
		}
		// The remote world learns the same diagnosis (async over TCP).
		deadline := time.Now().Add(5 * time.Second)
		for worlds[1].Failure() == nil && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		rf := worlds[1].Failure()
		if rf == nil || rf.Rank != 1 || rf.Reason != "boom" {
			t.Errorf("remote failure = %+v", rf)
		}
		if !worlds[1].Aborted() {
			t.Error("poison frame did not abort the remote world")
		}
	})
}

// TestLivenessDetectsSilentPeer: a rank whose endpoint goes silent
// (fault-injected kill, connections stay up) is detected by heartbeat
// liveness within the timeout, and the detecting world records a
// RankFailure naming it.
func TestLivenessDetectsSilentPeer(t *testing.T) {
	r := transport.NewRouter()
	e0 := r.Endpoint(0)
	e1 := r.Endpoint(1)
	e2 := r.Endpoint(2)
	// Rank 2 is killed from frame one: it neither sends nor receives.
	dead := transport.NewFault(e2, []int{2}, transport.FaultSpec{KillRank: 2}, nil)

	mk := func(rank int, tr transport.Transport) *World {
		w, err := NewDistributedWorld(3, []int{rank}, tr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		return w
	}
	w0 := mk(0, e0)
	w1 := mk(1, e1)
	mk(2, dead)

	var mu sync.Mutex
	downs := map[int]string{}
	lv := func() Liveness {
		return Liveness{
			Interval: 10 * time.Millisecond,
			Timeout:  150 * time.Millisecond,
			OnDown: func(rank int, reason string) {
				mu.Lock()
				downs[rank] = reason
				mu.Unlock()
			},
		}
	}
	if err := w0.StartLiveness(lv()); err != nil {
		t.Fatal(err)
	}
	if err := w0.StartLiveness(lv()); err == nil {
		t.Error("second StartLiveness accepted")
	}
	if err := w1.StartLiveness(lv()); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	deadline := start.Add(10 * time.Second)
	for (w0.Failure() == nil || w1.Failure() == nil) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for i, w := range []*World{w0, w1} {
		f := w.Failure()
		if f == nil {
			t.Fatalf("world %d never diagnosed a failure", i)
		}
		if f.Rank != 2 {
			t.Errorf("world %d blamed rank %d (%s), want 2", i, f.Rank, f.Reason)
		}
		if !w.Aborted() {
			t.Errorf("world %d not aborted", i)
		}
	}
	// Detection happened within a small multiple of the timeout, not at
	// some unbounded later point.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("detection took %v", d)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := downs[2]; !ok {
		t.Errorf("OnDown hook never fired for rank 2: %v", downs)
	}
}

// TestLivenessQuietButAlivePeer: a rank that sends no application
// traffic but heartbeats must not be declared failed.
func TestLivenessQuietButAlivePeer(t *testing.T) {
	worlds := routerWorlds(t, 2)
	for _, w := range worlds {
		if err := w.StartLiveness(Liveness{Interval: 5 * time.Millisecond, Timeout: 40 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		defer w.Close()
	}
	time.Sleep(300 * time.Millisecond)
	for i, w := range worlds {
		if f := w.Failure(); f != nil {
			t.Errorf("world %d diagnosed %v despite live heartbeats", i, f)
		}
		if w.Aborted() {
			t.Errorf("world %d aborted", i)
		}
	}
}
