package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultSpec configures deterministic fault injection on a Transport.
// The zero value injects nothing (Active reports false).  All
// randomness is drawn from a rand.Rand seeded with Seed (plus the
// endpoint's first local rank, so distinct ranks draw distinct but
// reproducible streams): a given spec on a given rank injects the same
// faults on every run.
type FaultSpec struct {
	// Seed selects the pseudo-random stream (default 1).
	Seed int64
	// Drop is the probability in [0,1] that an outbound frame is
	// silently discarded.
	Drop float64
	// Dup is the probability in [0,1] that an outbound frame is
	// delivered twice.
	Dup float64
	// Delay is the maximum extra latency added to an outbound frame;
	// each delayed frame sleeps a uniform duration in [0, Delay).
	Delay time.Duration
	// KillRank, when >= 0, names a rank whose endpoint goes silent —
	// both directions stop, without closing connections — after the
	// endpoint has moved KillAfter frames (in + out).  This models a
	// wedged or crashed process that the fabric cannot distinguish from
	// a slow one, so only liveness tracking catches it.
	KillRank int
	// KillAfter is the frame count before the kill engages (0 = at
	// once).
	KillAfter int
	// PartA/PartB, when both non-empty, define a network partition:
	// every frame between a rank in PartA and a rank in PartB is
	// dropped, in both directions.
	PartA, PartB []int
	// Heal, when > 0, heals the partition after the endpoint has moved
	// Heal frames (in + out): the partition only severs frames while
	// the frame count is at most Heal.  Models a transient fabric
	// outage that recovery must ride out.
	Heal int
}

// Active reports whether the spec injects any fault at all.
func (s FaultSpec) Active() bool {
	return s.Drop > 0 || s.Dup > 0 || s.Delay > 0 || s.KillRank >= 0 ||
		(len(s.PartA) > 0 && len(s.PartB) > 0)
}

// String renders the spec in ParseFaultSpec syntax.
func (s FaultSpec) String() string {
	var parts []string
	if s.Seed != 0 && s.Seed != 1 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	if s.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", s.Drop))
	}
	if s.Dup > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", s.Dup))
	}
	if s.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%s", s.Delay))
	}
	if s.KillRank >= 0 {
		parts = append(parts, fmt.Sprintf("kill=%d@%d", s.KillRank, s.KillAfter))
	}
	if len(s.PartA) > 0 && len(s.PartB) > 0 {
		parts = append(parts, fmt.Sprintf("partition=%s|%s", rankList(s.PartA), rankList(s.PartB)))
	}
	if s.Heal > 0 {
		parts = append(parts, fmt.Sprintf("heal=%d", s.Heal))
	}
	return strings.Join(parts, ";")
}

func rankList(rs []int) string {
	ss := make([]string, len(rs))
	for i, r := range rs {
		ss[i] = strconv.Itoa(r)
	}
	return strings.Join(ss, ",")
}

// ParseFaultSpec parses the -fault-spec syntax: semicolon-separated
// key=value clauses.
//
//	seed=N          RNG seed (default 1)
//	drop=P          drop each outbound frame with probability P
//	dup=P           duplicate each outbound frame with probability P
//	delay=D         delay each outbound frame by uniform [0,D) (e.g. 5ms)
//	kill=R@N        rank R's endpoint goes silent after N frames
//	partition=A|B   drop frames between rank lists A and B (e.g. 0,1|2,3)
//	heal=N          the partition heals after N frames
//
// An empty string parses to the inactive zero spec.
func ParseFaultSpec(str string) (FaultSpec, error) {
	spec := FaultSpec{Seed: 1, KillRank: -1}
	str = strings.TrimSpace(str)
	if str == "" {
		return spec, nil
	}
	for _, clause := range strings.Split(str, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return spec, fmt.Errorf("transport: fault spec clause %q lacks '='", clause)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			spec.Drop, err = parseProb(val)
		case "dup":
			spec.Dup, err = parseProb(val)
		case "delay":
			spec.Delay, err = time.ParseDuration(val)
			if err == nil && spec.Delay < 0 {
				err = fmt.Errorf("negative delay")
			}
		case "kill":
			rankStr, afterStr, hasAt := strings.Cut(val, "@")
			spec.KillRank, err = strconv.Atoi(rankStr)
			if err == nil && spec.KillRank < 0 {
				err = fmt.Errorf("negative rank")
			}
			if err == nil && hasAt {
				spec.KillAfter, err = strconv.Atoi(afterStr)
			}
		case "partition":
			aStr, bStr, hasBar := strings.Cut(val, "|")
			if !hasBar {
				return spec, fmt.Errorf("transport: partition %q lacks '|'", val)
			}
			if spec.PartA, err = parseRanks(aStr); err == nil {
				spec.PartB, err = parseRanks(bStr)
			}
			// A rank on both sides would partition it from itself —
			// always a typo, so reject it with the offending rank named
			// instead of silently dropping all of its traffic.
			if err == nil {
				for _, r := range spec.PartA {
					if containsRank(spec.PartB, r) {
						err = fmt.Errorf("rank %d on both sides of the partition", r)
						break
					}
				}
			}
		case "heal":
			spec.Heal, err = strconv.Atoi(val)
			if err == nil && spec.Heal < 0 {
				err = fmt.Errorf("negative heal")
			}
		default:
			return spec, fmt.Errorf("transport: unknown fault spec key %q", key)
		}
		if err != nil {
			return spec, fmt.Errorf("transport: fault spec clause %q: %v", clause, err)
		}
	}
	return spec, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", p)
	}
	return p, nil
}

func parseRanks(s string) ([]int, error) {
	var rs []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if r < 0 {
			return nil, fmt.Errorf("negative rank %d", r)
		}
		rs = append(rs, r)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("empty rank list")
	}
	sort.Ints(rs)
	return rs, nil
}

// FaultEvent kinds reported to the events hook.
const (
	FaultDrop  = "drop"  // an outbound frame was discarded
	FaultDup   = "dup"   // an outbound frame was sent twice
	FaultDelay = "delay" // an outbound frame was delayed
	FaultKill  = "kill"  // the endpoint went silent (reported once)
	FaultCut   = "cut"   // a frame was dropped by kill or partition
)

// Fault wraps an inner Transport and injects the faults described by a
// FaultSpec.  Drop, dup, and delay apply to outbound frames; kill and
// partition cut traffic in both directions.  Injection decisions are
// deterministic for a given (spec, local ranks) pair.  The optional
// events hook observes each injected fault (kind is one of the Fault*
// constants, peer is the remote rank involved); it must be safe for
// concurrent use.
type Fault struct {
	inner  Transport
	spec   FaultSpec
	local  map[int]bool
	events func(kind string, peer int)

	mu     sync.Mutex
	rng    *rand.Rand
	frames int
	killed bool
}

var _ Transport = (*Fault)(nil)

// NewFault wraps inner for the endpoint owning localRanks.  events may
// be nil.
func NewFault(inner Transport, localRanks []int, spec FaultSpec, events func(kind string, peer int)) *Fault {
	local := make(map[int]bool, len(localRanks))
	for _, r := range localRanks {
		local[r] = true
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	if len(localRanks) > 0 {
		seed = seed*1_000_003 + int64(localRanks[0])
	}
	return &Fault{
		inner:  inner,
		spec:   spec,
		local:  local,
		events: events,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

func (f *Fault) event(kind string, peer int) {
	if f.events != nil {
		f.events(kind, peer)
	}
}

// cut counts one frame and reports whether kill or partition severs the
// link between the local endpoint and peer.
func (f *Fault) cut(localRank, peer int) bool {
	f.mu.Lock()
	f.frames++
	frames := f.frames
	justKilled := false
	if !f.killed && f.spec.KillRank >= 0 && f.local[f.spec.KillRank] && f.frames > f.spec.KillAfter {
		f.killed = true
		justKilled = true
	}
	killed := f.killed
	f.mu.Unlock()
	if justKilled {
		f.event(FaultKill, f.spec.KillRank)
	}
	if killed {
		return true
	}
	if f.spec.Heal > 0 && frames > f.spec.Heal {
		return false // the partition has healed
	}
	return f.spec.partitioned(localRank, peer)
}

// partitioned reports whether the spec's partition severs a<->b.
func (s FaultSpec) partitioned(a, b int) bool {
	if len(s.PartA) == 0 || len(s.PartB) == 0 {
		return false
	}
	inA := containsRank(s.PartA, a)
	inB := containsRank(s.PartB, a)
	return (inA && containsRank(s.PartB, b)) || (inB && containsRank(s.PartA, b))
}

func containsRank(rs []int, r int) bool {
	i := sort.SearchInts(rs, r)
	return i < len(rs) && rs[i] == r
}

// Start installs a handler that applies inbound cuts before delivery.
func (f *Fault) Start(h Handler, down PeerDown) error {
	return f.inner.Start(func(src, dst, tag int, data any) {
		if f.cut(dst, src) {
			f.event(FaultCut, src)
			return
		}
		h(src, dst, tag, data)
	}, down)
}

// Send applies the outbound fault schedule, then forwards to the inner
// transport.  Cut frames (kill, partition) and dropped frames report
// success to the caller, exactly like a lossy fabric would.
func (f *Fault) Send(src, dst, tag int, data any) error {
	if f.cut(src, dst) {
		f.event(FaultCut, dst)
		return nil
	}
	f.mu.Lock()
	drop := f.spec.Drop > 0 && f.rng.Float64() < f.spec.Drop
	dup := f.spec.Dup > 0 && f.rng.Float64() < f.spec.Dup
	var delay time.Duration
	if f.spec.Delay > 0 {
		delay = time.Duration(f.rng.Int63n(int64(f.spec.Delay)))
	}
	f.mu.Unlock()
	if drop {
		f.event(FaultDrop, dst)
		return nil
	}
	if delay > 0 {
		f.event(FaultDelay, dst)
		time.Sleep(delay)
	}
	if err := f.inner.Send(src, dst, tag, data); err != nil {
		return err
	}
	if dup {
		f.event(FaultDup, dst)
		return f.inner.Send(src, dst, tag, data)
	}
	return nil
}

// multicastOK reports whether the wrapped transport supports the
// multicast contract; the fault wrapper itself adds nothing.
func (f *Fault) multicastOK() bool { return MulticasterFor(f.inner) != nil }

// SendMulti applies the outbound fault schedule to each destination
// individually — cut, drop, dup, and delay are all per-destination
// decisions, drawn in destination order from the same deterministic
// stream Send uses — then forwards the surviving subset in one inner
// multicast when the inner transport is a Multicaster, preserving the
// encode-once path for the destinations the fabric did not fault.
// Duplicated copies go through individual inner Sends.
func (f *Fault) SendMulti(src int, dsts []int, tag int, data any) error {
	var firstErr error
	record := func(dst int, err error) {
		if err != nil && firstErr == nil {
			firstErr = &SendError{Rank: dst, Err: err}
		}
	}
	clean := make([]int, 0, len(dsts))
	for _, dst := range dsts {
		if f.cut(src, dst) {
			f.event(FaultCut, dst)
			continue
		}
		f.mu.Lock()
		drop := f.spec.Drop > 0 && f.rng.Float64() < f.spec.Drop
		dup := f.spec.Dup > 0 && f.rng.Float64() < f.spec.Dup
		var delay time.Duration
		if f.spec.Delay > 0 {
			delay = time.Duration(f.rng.Int63n(int64(f.spec.Delay)))
		}
		f.mu.Unlock()
		if drop {
			f.event(FaultDrop, dst)
			continue
		}
		if delay > 0 {
			f.event(FaultDelay, dst)
			time.Sleep(delay)
		}
		clean = append(clean, dst)
		if dup {
			f.event(FaultDup, dst)
			record(dst, f.inner.Send(src, dst, tag, data))
		}
	}
	if len(clean) == 0 {
		return firstErr
	}
	if mc := MulticasterFor(f.inner); mc != nil {
		if err := mc.SendMulti(src, clean, tag, data); err != nil && firstErr == nil {
			firstErr = err
		}
	} else {
		for _, dst := range clean {
			record(dst, f.inner.Send(src, dst, tag, data))
		}
	}
	return firstErr
}

// Close closes the inner transport.
func (f *Fault) Close() error { return f.inner.Close() }

// ClockOffsets forwards the inner transport's handshake clock samples
// (ClockSampler), so fault injection does not hide clock alignment.
func (f *Fault) ClockOffsets() map[int]int64 { return SampleClockOffsets(f.inner) }
