// Package transport provides the pluggable message transports behind
// the MPI substitution layer (mpi.World).
//
// A Transport moves tagged messages between world ranks that live in
// different endpoints — separate OS processes connected over TCP
// (NewTCP), or separate in-process worlds wired through a Router (used
// by tests and benchmarks).  The all-local world created by
// mpi.NewWorld does not use a Transport at all: its mailboxes deliver
// payloads by pointer, which is the in-process fast path the SIP runs
// on by default.
//
// Payloads crossing a TCP transport are encoded with internal/wire, so
// every type sent through a distributed world must be registered there.
// The in-process Router shares pointers, exactly like the default
// world; the difference in ownership semantics between the two is part
// of the documented send contract (see docs/TRANSPORT.md).
package transport

import (
	"fmt"
	"sync"
)

// Handler delivers an incoming message to the receiving endpoint.  It
// is invoked from the transport's receive machinery and must be safe
// for concurrent use.
type Handler func(src, dst, tag int, data any)

// PeerDown reports that the connection to a peer failed outside a clean
// shutdown.  The world layer uses it to abort blocked receivers instead
// of hanging on messages that can never arrive.
type PeerDown func(peer int, err error)

// Transport moves messages between world endpoints.
type Transport interface {
	// Start installs the receive handler and failure callback and begins
	// accepting traffic.  It must be called exactly once, before Send.
	Start(h Handler, down PeerDown) error
	// Send delivers data to rank dst.  Implementations either share the
	// payload pointer (in-process) or serialize it before returning
	// (TCP), per the ownership contract.
	Send(src, dst, tag int, data any) error
	// Close tears the transport down, flushing queued outbound messages
	// where possible.  After Close, Send fails and peer failures are no
	// longer reported.
	Close() error
}

// Multicaster is an optional Transport capability: delivering one
// payload to several destination ranks while serializing it only once.
// Serializing transports (TCP) implement it by encoding the payload
// into a shared refcounted buffer queued for every destination, so a
// replica fan-out pays one encode and zero clones however many peers it
// reaches.
//
// Pointer-sharing transports (Router/Local) must NOT implement it:
// they would hand every receiver the same payload pointer, and
// receivers of multicast traffic may mutate what they receive.  The
// mpi layer falls back to per-destination sends with per-destination
// clones when the capability is absent (see mpi.Comm.Multicast).
//
// SendMulti serializes data before returning (the caller may reuse the
// payload) and delivers best-effort per destination: a failed
// destination does not stop the others.  The first failure is returned,
// wrapped in SendError so callers can attribute it to a rank.
type Multicaster interface {
	SendMulti(src int, dsts []int, tag int, data any) error
}

// condMulticaster is implemented by wrapping transports (Fault) whose
// multicast support depends on the wrapped transport: the wrapper
// always has a SendMulti method, but it only honors the encode-once /
// no-clone contract when the transport underneath does.
type condMulticaster interface {
	Multicaster
	multicastOK() bool
}

// MulticasterFor returns tr's multicast capability, or nil when the
// transport (or, for wrappers, the transport underneath) does not
// support it.  Callers deciding between the encode-once multicast path
// and per-destination clones must use this, not a bare type assertion:
// a wrapper over a pointer-sharing transport asserts as a Multicaster
// but must not be used as one.
func MulticasterFor(tr Transport) Multicaster {
	mc, ok := tr.(Multicaster)
	if !ok {
		return nil
	}
	if c, ok := tr.(condMulticaster); ok && !c.multicastOK() {
		return nil
	}
	return mc
}

// SendError attributes a transport send failure to one destination
// rank of a multi-destination send.
type SendError struct {
	Rank int
	Err  error
}

func (e *SendError) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Err) }
func (e *SendError) Unwrap() error { return e.Err }

// Observer receives connection-level instrumentation callbacks.
// Methods must be cheap and safe for concurrent use.  Implementations
// may embed NopObserver to pick up defaults.
type Observer interface {
	// OnConnect reports a successfully established outbound connection;
	// attempts counts the dials needed (attempts > 1 means retries).
	OnConnect(peer, attempts int)
	// OnAccept reports an accepted inbound connection.
	OnAccept(peer int)
	// OnFrameSend / OnFrameRecv report one framed message moved on the
	// wire, with its payload size in bytes.
	OnFrameSend(peer, bytes int)
	OnFrameRecv(peer, bytes int)
	// OnPeerDown reports a connection failure outside clean shutdown.
	OnPeerDown(peer int, err error)
}

// ClockSampler is an optional Transport capability: transports whose
// endpoints live on different machines (or at least different
// processes) report their estimate of each peer's wall-clock offset
// (peer clock − local clock, in µs), sampled during the connection
// handshake.  In-process transports share one clock and simply do not
// implement the interface.  Wrapping transports (e.g. Fault) forward
// it when the inner transport implements it.
type ClockSampler interface {
	ClockOffsets() map[int]int64
}

// SampleClockOffsets returns tr's handshake clock-offset estimates, or
// nil when the transport does not sample clocks.
func SampleClockOffsets(tr Transport) map[int]int64 {
	if cs, ok := tr.(ClockSampler); ok {
		return cs.ClockOffsets()
	}
	return nil
}

// NopObserver is an Observer that ignores every callback.
type NopObserver struct{}

func (NopObserver) OnConnect(int, int)    {}
func (NopObserver) OnAccept(int)          {}
func (NopObserver) OnFrameSend(int, int)  {}
func (NopObserver) OnFrameRecv(int, int)  {}
func (NopObserver) OnPeerDown(int, error) {}

// ---------------------------------------------------------------------
// In-process router transport

// Router wires several in-process endpoints into one logical world: it
// is the channel-based transport, sharing payload pointers and
// delivering synchronously on the sender's goroutine — the same
// semantics as the default all-local world, but across distinct
// mpi.World instances.  Tests and benchmarks use it to exercise the
// distributed code paths without sockets.
type Router struct {
	mu     sync.RWMutex
	owners map[int]*Local
}

// NewRouter creates an empty router.
func NewRouter() *Router { return &Router{owners: map[int]*Local{}} }

// Endpoint registers a new endpoint owning the given ranks.
func (r *Router) Endpoint(ranks ...int) *Local {
	l := &Local{router: r, ranks: ranks}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rank := range ranks {
		if _, ok := r.owners[rank]; ok {
			panic(fmt.Sprintf("transport: rank %d registered twice", rank))
		}
		r.owners[rank] = l
	}
	return l
}

// Local is one endpoint of a Router.
type Local struct {
	router *Router
	ranks  []int

	mu      sync.RWMutex
	handler Handler
	down    PeerDown
	closed  bool
}

var _ Transport = (*Local)(nil)

// Start installs the receive handler.
func (l *Local) Start(h Handler, down PeerDown) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.handler != nil {
		return fmt.Errorf("transport: Start called twice")
	}
	l.handler = h
	l.down = down
	return nil
}

// Send delivers data synchronously to the endpoint owning dst.  The
// receiver gets the same pointer the sender passed: senders must not
// mutate the payload after sending.
func (l *Local) Send(src, dst, tag int, data any) error {
	l.mu.RLock()
	closed := l.closed
	l.mu.RUnlock()
	if closed {
		return fmt.Errorf("transport: endpoint closed")
	}
	l.router.mu.RLock()
	target := l.router.owners[dst]
	l.router.mu.RUnlock()
	if target == nil {
		return fmt.Errorf("transport: no endpoint owns rank %d", dst)
	}
	target.mu.RLock()
	h, closed := target.handler, target.closed
	target.mu.RUnlock()
	if closed || h == nil {
		return fmt.Errorf("transport: endpoint for rank %d not receiving", dst)
	}
	h(src, dst, tag, data)
	return nil
}

// Close deregisters the endpoint and notifies the remaining endpoints
// that its ranks are down (mirroring a TCP connection teardown).
func (l *Local) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()

	l.router.mu.Lock()
	var others []*Local
	seen := map[*Local]bool{l: true}
	for _, rank := range l.ranks {
		delete(l.router.owners, rank)
	}
	for _, ep := range l.router.owners {
		if !seen[ep] {
			seen[ep] = true
			others = append(others, ep)
		}
	}
	l.router.mu.Unlock()

	for _, ep := range others {
		ep.mu.RLock()
		down, closed := ep.down, ep.closed
		ep.mu.RUnlock()
		if closed || down == nil {
			continue
		}
		for _, rank := range l.ranks {
			down(rank, fmt.Errorf("transport: endpoint for rank %d closed", rank))
		}
	}
	return nil
}
