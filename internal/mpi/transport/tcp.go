package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Wire protocol constants.  Every frame on a connection is a 4-byte
// big-endian payload length followed by the payload.  The first frame
// after connect is a handshake: the 4 magic bytes, a version byte, the
// dialer's rank as a zigzag varint, and the dialer's wall clock in unix
// µs as a zigzag varint — a coarse clock sample the observability plane
// uses to place ranks on one merged timeline.
//
// Since version 3 a message frame carries a *batch*: one or more
// messages back to back, each src, dst, and tag as zigzag varints
// followed by the wire-encoded payload (type id + body).  The writer
// coalesces whatever is queued for a peer — small acks, effect-seqs,
// heartbeats, observability reports — into one frame per writev, up to
// BatchBytes.  Version 2 framed exactly one message per frame; a v3
// reader would parse a v2 stream fine, but the version byte is bumped
// so mixed builds fail loudly at the handshake instead of subtly.
const (
	tcpMagic   = "SIPW"
	tcpVersion = 3
)

// TCPConfig parameterizes a TCP transport endpoint.
type TCPConfig struct {
	// Rank is the world rank this process plays.
	Rank int
	// Addrs maps every rank to its host:port.  Addrs[Rank] is this
	// process's listen address unless Listener is set.
	Addrs []string
	// Listener, when non-nil, is a pre-bound listener used instead of
	// listening on Addrs[Rank] (tests use it to avoid port races).
	Listener net.Listener

	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// RetryBase is the first dial-retry backoff (default 25ms); it
	// doubles per attempt up to RetryMax (default 1s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetryDeadline bounds the total time spent dialing one peer
	// (default 15s); past it the peer is reported down.
	RetryDeadline time.Duration
	// WriteTimeout bounds one frame write (default 30s).
	WriteTimeout time.Duration
	// MaxFrame bounds accepted frame payloads (default 1 GiB).
	MaxFrame int
	// BatchBytes caps how many queued message bytes the writer
	// coalesces into one frame (default 256 KiB, clamped to MaxFrame).
	// The first queued message is always taken whatever its size, so a
	// single block larger than the cap still moves.
	BatchBytes int

	// Observer receives connection metrics; nil disables them.
	Observer Observer
}

func (c *TCPConfig) fill() error {
	if c.Rank < 0 || c.Rank >= len(c.Addrs) {
		return fmt.Errorf("transport: rank %d out of range for %d addresses", c.Rank, len(c.Addrs))
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.RetryDeadline <= 0 {
		c.RetryDeadline = 15 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 1 << 30
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 256 << 10
	}
	if c.BatchBytes > c.MaxFrame {
		c.BatchBytes = c.MaxFrame
	}
	if c.Observer == nil {
		c.Observer = NopObserver{}
	}
	return nil
}

// TCP is the socket transport: length-prefixed batch frames over one
// lazily dialed connection per outbound peer, with dial retry and
// exponential backoff.  Payloads are serialized with internal/wire into
// pooled encoders before Send returns, so (unlike the in-process
// transports) senders may reuse the payload immediately; SendMulti
// serializes a payload once and shares the bytes across every
// destination's queue.
type TCP struct {
	cfg TCPConfig
	ln  net.Listener

	handler Handler
	down    PeerDown

	mu    sync.Mutex
	peers map[int]*tcpPeer
	conns map[net.Conn]bool // inbound connections, for teardown

	closed   atomic.Bool
	closeCh  chan struct{} // closed by Close; interrupts dial backoffs
	writerWG sync.WaitGroup
	readerWG sync.WaitGroup

	clockMu  sync.Mutex
	clockOff map[int]int64 // peer clock − local clock, µs, from handshakes
}

var (
	_ Transport   = (*TCP)(nil)
	_ Multicaster = (*TCP)(nil)
)

// outMsg is one queued outbound message: a small pooled header encoder
// holding the src/dst/tag varints (and, for unicast sends, the payload
// too), plus an optional shared payload body that multicast sends
// refcount across several peers' queues.
type outMsg struct {
	head *wire.Encoder
	body *sharedBuf
}

func (m outMsg) size() int {
	n := m.head.Len()
	if m.body != nil {
		n += m.body.enc.Len()
	}
	return n
}

// release returns the message's encoders to the pool.  Called exactly
// once per queue entry: after the bytes hit the socket, or when the
// queue is discarded by fail().
func (m outMsg) release() {
	wire.PutEncoder(m.head)
	if m.body != nil {
		m.body.release()
	}
}

// sharedBuf is a refcounted pooled encoder: the payload of a multicast
// send, queued for several peers at once and released when the last
// writer is done with it.
type sharedBuf struct {
	enc  *wire.Encoder
	refs atomic.Int32
}

func (b *sharedBuf) release() {
	if b.refs.Add(-1) == 0 {
		wire.PutEncoder(b.enc)
	}
}

// tcpPeer is the outbound side of one peer connection: an unbounded
// message queue drained by a dedicated writer goroutine, so Send never
// blocks on the network (MPI eager-send semantics).
type tcpPeer struct {
	rank int
	mu   sync.Mutex
	cond *sync.Cond

	queue   []outMsg // pending messages are queue[head:]
	head    int
	depth   int
	closing bool
	failed  error
}

// NewTCP binds the endpoint's listener and returns the transport.
// Peers can connect as soon as NewTCP returns; inbound traffic is
// processed once Start installs the handler.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.Rank], err)
		}
	}
	return &TCP{cfg: cfg, ln: ln, peers: map[int]*tcpPeer{},
		conns: map[net.Conn]bool{}, closeCh: make(chan struct{})}, nil
}

// Addr returns the listener's actual address (useful with ":0" ports).
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// Start installs the receive handler and begins accepting connections.
func (t *TCP) Start(h Handler, down PeerDown) error {
	if t.handler != nil {
		return errors.New("transport: Start called twice")
	}
	t.handler = h
	t.down = down
	t.readerWG.Add(1)
	go t.acceptLoop()
	return nil
}

func (t *TCP) acceptLoop() {
	defer t.readerWG.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed.Load() {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = true
		t.mu.Unlock()
		t.readerWG.Add(1)
		go t.readConn(conn)
	}
}

// readConn consumes one inbound connection: handshake, then frames.
// One scratch buffer is reused for every frame on the connection —
// safe because dispatch is synchronous and wire decoders copy, so no
// decoded value aliases the frame bytes.
func (t *TCP) readConn(conn net.Conn) {
	defer t.readerWG.Done()
	peer, err := t.readHandshake(conn)
	if err != nil {
		conn.Close()
		if !t.closed.Load() {
			t.cfg.Observer.OnPeerDown(-1, err)
		}
		return
	}
	t.cfg.Observer.OnAccept(peer)
	var scratch []byte
	dec := wire.NewDecoder(nil) // reused across frames, like scratch
	for {
		payload, err := readFrame(conn, t.cfg.MaxFrame, &scratch)
		if err != nil {
			conn.Close()
			if !t.closed.Load() && !errors.Is(err, io.EOF) {
				t.reportDown(peer, err)
			}
			return
		}
		dec.Reset(payload)
		if err := t.dispatch(peer, dec); err != nil {
			conn.Close()
			if !t.closed.Load() {
				t.reportDown(peer, err)
			}
			return
		}
	}
}

// reportDown forwards a connection failure to the observer and the
// world layer.
func (t *TCP) reportDown(peer int, err error) {
	t.cfg.Observer.OnPeerDown(peer, err)
	if t.down != nil {
		t.down(peer, err)
	}
}

func (t *TCP) readHandshake(conn net.Conn) (int, error) {
	payload, err := readFrame(conn, 64, nil)
	if err != nil {
		return -1, fmt.Errorf("transport: handshake: %w", err)
	}
	if len(payload) < len(tcpMagic)+1 || string(payload[:len(tcpMagic)]) != tcpMagic {
		return -1, fmt.Errorf("transport: bad handshake magic")
	}
	if v := payload[len(tcpMagic)]; v != tcpVersion {
		return -1, fmt.Errorf("transport: protocol version %d, want %d", v, tcpVersion)
	}
	d := wire.NewDecoder(payload[len(tcpMagic)+1:])
	rank := d.Int()
	if d.Err() != nil {
		return -1, fmt.Errorf("transport: handshake rank: %w", d.Err())
	}
	if d.Remaining() > 0 {
		sentUs := int64(d.Int())
		if d.Err() == nil {
			// One-way sample: the dialer stamped sentUs just before the
			// frame left, so (sentUs − now) underestimates the peer's
			// clock offset by the network delay.  Good enough to anchor
			// merged traces; the mpi layer refines it with ping-pong.
			t.noteClock(rank, sentUs-time.Now().UnixMicro())
		}
	}
	return rank, nil
}

// noteClock records a handshake clock-offset sample for a peer.  Only
// the first sample per peer is kept: reconnects do not overwrite an
// estimate the run may already be using.
func (t *TCP) noteClock(rank int, offsetUs int64) {
	t.clockMu.Lock()
	defer t.clockMu.Unlock()
	if t.clockOff == nil {
		t.clockOff = map[int]int64{}
	}
	if _, ok := t.clockOff[rank]; !ok {
		t.clockOff[rank] = offsetUs
	}
}

// ClockOffsets implements ClockSampler: it returns the handshake-derived
// estimate of each connected peer's clock offset (peer − local, µs).
func (t *TCP) ClockOffsets() map[int]int64 {
	t.clockMu.Lock()
	defer t.clockMu.Unlock()
	out := make(map[int]int64, len(t.clockOff))
	for r, off := range t.clockOff {
		out[r] = off
	}
	return out
}

// dispatch decodes one batch frame — one or more messages back to back
// — and hands each to the world layer.  The observer sees one
// OnFrameRecv per message (matching the per-message OnFrameSend), so
// net.* counters keep message granularity whatever the batching.
func (t *TCP) dispatch(peer int, d *wire.Decoder) error {
	for d.Remaining() > 0 {
		before := d.Remaining()
		src, dst, tag := d.Int(), d.Int(), d.Int()
		data := d.Any()
		if err := d.Err(); err != nil {
			return fmt.Errorf("transport: bad frame: %w", err)
		}
		t.cfg.Observer.OnFrameRecv(peer, before-d.Remaining())
		t.handler(src, dst, tag, data)
	}
	return nil
}

// Send serializes the payload into a pooled encoder and queues it for
// the peer's writer, dialing the connection lazily.  The payload is
// fully encoded before Send returns: the caller may mutate it
// afterwards.
func (t *TCP) Send(src, dst, tag int, data any) error {
	if t.closed.Load() {
		return errors.New("transport: closed")
	}
	e := wire.GetEncoder(wire.SizeHint(data, 64) + 16)
	e.Int(src)
	e.Int(dst)
	e.Int(tag)
	e.Any(data)
	return t.peer(dst).enqueue(outMsg{head: e})
}

// SendMulti implements Multicaster: the payload is serialized once into
// a shared pooled buffer and queued for every destination, so a replica
// fan-out pays one encode however many peers it reaches.  Per-peer
// enqueue failures are attributed with SendError; the remaining
// destinations still get the message.
func (t *TCP) SendMulti(src int, dsts []int, tag int, data any) error {
	if t.closed.Load() {
		return errors.New("transport: closed")
	}
	if len(dsts) == 0 {
		return nil
	}
	body := wire.GetEncoder(wire.SizeHint(data, 64))
	body.Any(data)
	shared := &sharedBuf{enc: body}
	shared.refs.Store(int32(len(dsts)))
	var firstErr error
	for _, dst := range dsts {
		h := wire.GetEncoder(16)
		h.Int(src)
		h.Int(dst)
		h.Int(tag)
		if err := t.peer(dst).enqueue(outMsg{head: h, body: shared}); err != nil && firstErr == nil {
			firstErr = &SendError{Rank: dst, Err: err}
		}
	}
	return firstErr
}

// QueueDepth returns the outbound backlog for dst in messages.
func (t *TCP) QueueDepth(dst int) int {
	t.mu.Lock()
	p := t.peers[dst]
	t.mu.Unlock()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.depth
}

func (t *TCP) peer(rank int) *tcpPeer {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[rank]
	if p == nil {
		p = &tcpPeer{rank: rank}
		p.cond = sync.NewCond(&p.mu)
		t.peers[rank] = p
		t.writerWG.Add(1)
		go t.writeLoop(p)
	}
	return p
}

func (p *tcpPeer) enqueue(m outMsg) error {
	p.mu.Lock()
	if p.failed != nil {
		err := p.failed
		p.mu.Unlock()
		m.release()
		return err
	}
	if p.closing {
		p.mu.Unlock()
		m.release()
		return errors.New("transport: peer connection closing")
	}
	p.queue = append(p.queue, m)
	p.depth = len(p.queue) - p.head
	p.cond.Signal()
	p.mu.Unlock()
	return nil
}

// nextBatch blocks until messages are queued or the peer is closing
// with an empty queue, then pops a prefix of the queue whose total size
// stays under maxBytes (always at least one message) into batch, whose
// capacity is reused across calls.
func (p *tcpPeer) nextBatch(maxBytes int, batch []outMsg) ([]outMsg, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.head == len(p.queue) && !p.closing {
		p.cond.Wait()
	}
	if p.head == len(p.queue) {
		return nil, false
	}
	batch = batch[:0]
	total := 0
	for i := p.head; i < len(p.queue); i++ {
		m := p.queue[i]
		if i > p.head && total+m.size() > maxBytes {
			break
		}
		batch = append(batch, m)
		total += m.size()
	}
	// Zero the popped entries so the queue's backing array does not pin
	// pooled encoders after they are released, then pop by advancing
	// head — keeping the backing array so a steady stream of sends stops
	// reallocating the queue once it reaches its high-water capacity.
	for i := range batch {
		p.queue[p.head+i] = outMsg{}
	}
	p.head += len(batch)
	if p.head == len(p.queue) {
		p.queue = p.queue[:0]
		p.head = 0
	}
	p.depth = len(p.queue) - p.head
	return batch, true
}

// pending reports whether messages are still queued.
func (p *tcpPeer) pending() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.head < len(p.queue)
}

// fail latches a send error and discards (and releases) the backlog.
func (p *tcpPeer) fail(err error) {
	p.mu.Lock()
	p.failed = err
	q := p.queue[p.head:]
	p.queue = nil
	p.head = 0
	p.depth = 0
	p.mu.Unlock()
	for _, m := range q {
		m.release()
	}
	p.cond.Broadcast()
}

// writeLoop dials the peer with retry + exponential backoff, sends the
// handshake, and drains the message queue — one frame (and one writev)
// per batch, gathering the length prefix and every message's header and
// payload slices into a single net.Buffers write.
func (t *TCP) writeLoop(p *tcpPeer) {
	defer t.writerWG.Done()
	conn, err := t.dialBackoff(p)
	if err != nil {
		p.fail(err)
		if !t.closed.Load() {
			t.reportDown(p.rank, err)
		}
		return
	}
	defer conn.Close()
	var (
		batch []outMsg
		iov   [][]byte
		bufs  net.Buffers // hoisted: its address escapes into WriteTo
		hdr   [4]byte
	)
	abort := func(err error) {
		for _, m := range batch {
			m.release()
		}
		p.fail(err)
		if !t.closed.Load() {
			t.reportDown(p.rank, err)
		}
	}
	for {
		var ok bool
		batch, ok = p.nextBatch(t.cfg.BatchBytes, batch)
		if !ok {
			return // clean close, queue drained
		}
		total := 0
		iov = append(iov[:0], hdr[:])
		for _, m := range batch {
			total += m.size()
			iov = append(iov, m.head.Bytes())
			if m.body != nil {
				iov = append(iov, m.body.enc.Bytes())
			}
		}
		binary.BigEndian.PutUint32(hdr[:], uint32(total))
		// A deadline that cannot be armed would leave the write
		// unbounded against a wedged peer: fail the peer, attributed.
		if err := conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout)); err != nil {
			abort(fmt.Errorf("transport: arm write deadline for rank %d: %w", p.rank, err))
			return
		}
		// WriteTo consumes the slice header it is given; iov keeps the
		// original, so its backing array is reusable next batch.
		bufs = net.Buffers(iov)
		if _, err := bufs.WriteTo(conn); err != nil {
			abort(err)
			return
		}
		for _, m := range batch {
			t.cfg.Observer.OnFrameSend(p.rank, m.size())
			m.release()
		}
	}
}

// dialBackoff establishes the outbound connection to p, retrying with
// exponential backoff until RetryDeadline, and sends the handshake.
func (t *TCP) dialBackoff(p *tcpPeer) (net.Conn, error) {
	if p.rank < 0 || p.rank >= len(t.cfg.Addrs) {
		return nil, fmt.Errorf("transport: no address for rank %d", p.rank)
	}
	addr := t.cfg.Addrs[p.rank]
	deadline := time.Now().Add(t.cfg.RetryDeadline)
	backoff := t.cfg.RetryBase
	var lastErr error
	for attempt := 1; ; attempt++ {
		// After Close, a pending backlog earns exactly one more dial
		// attempt (flush-if-reachable); without one there is nothing left
		// to deliver and the writer stops immediately.  Either way Close
		// is never held hostage by the retry schedule.
		closing := t.closed.Load()
		if closing && !p.pending() {
			return nil, errors.New("transport: closed")
		}
		conn, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
		if err == nil {
			e := wire.GetEncoder(32)
			e.Byte(tcpMagic[0])
			e.Byte(tcpMagic[1])
			e.Byte(tcpMagic[2])
			e.Byte(tcpMagic[3])
			e.Byte(tcpVersion)
			e.Int(t.cfg.Rank)
			e.Int(int(time.Now().UnixMicro()))
			err := conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
			if err == nil {
				err = writeFrame(conn, e.Bytes())
			}
			wire.PutEncoder(e)
			if err != nil {
				conn.Close()
				return nil, fmt.Errorf("transport: handshake to rank %d: %w", p.rank, err)
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			t.cfg.Observer.OnConnect(p.rank, attempt)
			return conn, nil
		}
		lastErr = err
		if closing {
			return nil, fmt.Errorf("transport: dial rank %d (%s) abandoned at close: %w",
				p.rank, addr, lastErr)
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("transport: dial rank %d (%s) after %d attempts: %w",
				p.rank, addr, attempt, lastErr)
		}
		// Sleep the backoff, but let Close interrupt it: an
		// uninterruptible time.Sleep here held Close hostage for up to
		// RetryMax per peer.
		select {
		case <-t.closeCh:
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > t.cfg.RetryMax {
			backoff = t.cfg.RetryMax
		}
	}
}

// Close flushes queued outbound frames, then tears all connections
// down.  Peer failures observed during and after Close are not
// reported.
func (t *TCP) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.closeCh) // wake writers sleeping in a dial backoff
	// Stop outbound writers after their queues drain (writers have write
	// deadlines, so this terminates even against a dead peer).
	t.mu.Lock()
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		p.closing = true
		p.mu.Unlock()
		p.cond.Broadcast()
	}
	t.writerWG.Wait()
	// Now stop inbound traffic.
	t.ln.Close()
	t.mu.Lock()
	for conn := range t.conns {
		conn.Close()
	}
	t.mu.Unlock()
	t.readerWG.Wait()
	return nil
}

// writeFrame writes one length-prefixed frame as a single gathered
// write (writev), so header and payload never split into two packets
// or two syscalls.
func writeFrame(conn net.Conn, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	bufs := net.Buffers{hdr[:], payload}
	_, err := bufs.WriteTo(conn)
	return err
}

// readFrame reads one length-prefixed frame.  With a non-nil scratch,
// the payload is read into (and aliases) the scratch buffer, which
// grows to the largest frame seen; callers reuse it across frames and
// must consume the payload before the next call.
func readFrame(conn net.Conn, maxFrame int, scratch *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxFrame) {
		return nil, fmt.Errorf("frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	var payload []byte
	if scratch != nil {
		if cap(*scratch) < int(n) {
			*scratch = make([]byte, n)
		}
		payload = (*scratch)[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
