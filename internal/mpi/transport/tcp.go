package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Wire protocol constants.  Every frame on a connection is a 4-byte
// big-endian payload length followed by the payload.  The first frame
// after connect is a handshake: the 4 magic bytes, a version byte, the
// dialer's rank as a zigzag varint, and (since version 2) the dialer's
// wall clock in unix µs as a zigzag varint — a coarse clock sample the
// observability plane uses to place ranks on one merged timeline.
// Every later frame is a message: src, dst, and tag as zigzag varints
// followed by the wire-encoded payload (type id + body).
const (
	tcpMagic   = "SIPW"
	tcpVersion = 2
)

// TCPConfig parameterizes a TCP transport endpoint.
type TCPConfig struct {
	// Rank is the world rank this process plays.
	Rank int
	// Addrs maps every rank to its host:port.  Addrs[Rank] is this
	// process's listen address unless Listener is set.
	Addrs []string
	// Listener, when non-nil, is a pre-bound listener used instead of
	// listening on Addrs[Rank] (tests use it to avoid port races).
	Listener net.Listener

	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// RetryBase is the first dial-retry backoff (default 25ms); it
	// doubles per attempt up to RetryMax (default 1s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetryDeadline bounds the total time spent dialing one peer
	// (default 15s); past it the peer is reported down.
	RetryDeadline time.Duration
	// WriteTimeout bounds one frame write (default 30s).
	WriteTimeout time.Duration
	// MaxFrame bounds accepted frame payloads (default 1 GiB).
	MaxFrame int

	// Observer receives connection metrics; nil disables them.
	Observer Observer
}

func (c *TCPConfig) fill() error {
	if c.Rank < 0 || c.Rank >= len(c.Addrs) {
		return fmt.Errorf("transport: rank %d out of range for %d addresses", c.Rank, len(c.Addrs))
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.RetryDeadline <= 0 {
		c.RetryDeadline = 15 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 1 << 30
	}
	if c.Observer == nil {
		c.Observer = NopObserver{}
	}
	return nil
}

// TCP is the socket transport: length-prefixed frames over one lazily
// dialed connection per outbound peer, with dial retry and exponential
// backoff.  Payloads are serialized with internal/wire before Send
// returns, so (unlike the in-process transports) senders may reuse the
// payload immediately.
type TCP struct {
	cfg TCPConfig
	ln  net.Listener

	handler Handler
	down    PeerDown

	mu    sync.Mutex
	peers map[int]*tcpPeer
	conns map[net.Conn]bool // inbound connections, for teardown

	closed   atomic.Bool
	closeCh  chan struct{} // closed by Close; interrupts dial backoffs
	writerWG sync.WaitGroup
	readerWG sync.WaitGroup

	clockMu  sync.Mutex
	clockOff map[int]int64 // peer clock − local clock, µs, from handshakes
}

var _ Transport = (*TCP)(nil)

// tcpPeer is the outbound side of one peer connection: an unbounded
// frame queue drained by a dedicated writer goroutine, so Send never
// blocks on the network (MPI eager-send semantics).
type tcpPeer struct {
	rank int
	mu   sync.Mutex
	cond *sync.Cond

	queue   [][]byte
	depth   int
	closing bool
	failed  error
}

// NewTCP binds the endpoint's listener and returns the transport.
// Peers can connect as soon as NewTCP returns; inbound traffic is
// processed once Start installs the handler.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.Rank], err)
		}
	}
	return &TCP{cfg: cfg, ln: ln, peers: map[int]*tcpPeer{},
		conns: map[net.Conn]bool{}, closeCh: make(chan struct{})}, nil
}

// Addr returns the listener's actual address (useful with ":0" ports).
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// Start installs the receive handler and begins accepting connections.
func (t *TCP) Start(h Handler, down PeerDown) error {
	if t.handler != nil {
		return errors.New("transport: Start called twice")
	}
	t.handler = h
	t.down = down
	t.readerWG.Add(1)
	go t.acceptLoop()
	return nil
}

func (t *TCP) acceptLoop() {
	defer t.readerWG.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed.Load() {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = true
		t.mu.Unlock()
		t.readerWG.Add(1)
		go t.readConn(conn)
	}
}

// readConn consumes one inbound connection: handshake, then frames.
func (t *TCP) readConn(conn net.Conn) {
	defer t.readerWG.Done()
	peer, err := t.readHandshake(conn)
	if err != nil {
		conn.Close()
		if !t.closed.Load() {
			t.cfg.Observer.OnPeerDown(-1, err)
		}
		return
	}
	t.cfg.Observer.OnAccept(peer)
	for {
		payload, err := readFrame(conn, t.cfg.MaxFrame)
		if err != nil {
			conn.Close()
			if !t.closed.Load() && !errors.Is(err, io.EOF) {
				t.reportDown(peer, err)
			}
			return
		}
		t.cfg.Observer.OnFrameRecv(peer, len(payload))
		if err := t.dispatch(payload); err != nil {
			conn.Close()
			if !t.closed.Load() {
				t.reportDown(peer, err)
			}
			return
		}
	}
}

// reportDown forwards a connection failure to the observer and the
// world layer.
func (t *TCP) reportDown(peer int, err error) {
	t.cfg.Observer.OnPeerDown(peer, err)
	if t.down != nil {
		t.down(peer, err)
	}
}

func (t *TCP) readHandshake(conn net.Conn) (int, error) {
	payload, err := readFrame(conn, 64)
	if err != nil {
		return -1, fmt.Errorf("transport: handshake: %w", err)
	}
	if len(payload) < len(tcpMagic)+1 || string(payload[:len(tcpMagic)]) != tcpMagic {
		return -1, fmt.Errorf("transport: bad handshake magic")
	}
	if v := payload[len(tcpMagic)]; v != tcpVersion {
		return -1, fmt.Errorf("transport: protocol version %d, want %d", v, tcpVersion)
	}
	d := wire.NewDecoder(payload[len(tcpMagic)+1:])
	rank := d.Int()
	if d.Err() != nil {
		return -1, fmt.Errorf("transport: handshake rank: %w", d.Err())
	}
	if d.Remaining() > 0 {
		sentUs := int64(d.Int())
		if d.Err() == nil {
			// One-way sample: the dialer stamped sentUs just before the
			// frame left, so (sentUs − now) underestimates the peer's
			// clock offset by the network delay.  Good enough to anchor
			// merged traces; the mpi layer refines it with ping-pong.
			t.noteClock(rank, sentUs-time.Now().UnixMicro())
		}
	}
	return rank, nil
}

// noteClock records a handshake clock-offset sample for a peer.  Only
// the first sample per peer is kept: reconnects do not overwrite an
// estimate the run may already be using.
func (t *TCP) noteClock(rank int, offsetUs int64) {
	t.clockMu.Lock()
	defer t.clockMu.Unlock()
	if t.clockOff == nil {
		t.clockOff = map[int]int64{}
	}
	if _, ok := t.clockOff[rank]; !ok {
		t.clockOff[rank] = offsetUs
	}
}

// ClockOffsets implements ClockSampler: it returns the handshake-derived
// estimate of each connected peer's clock offset (peer − local, µs).
func (t *TCP) ClockOffsets() map[int]int64 {
	t.clockMu.Lock()
	defer t.clockMu.Unlock()
	out := make(map[int]int64, len(t.clockOff))
	for r, off := range t.clockOff {
		out[r] = off
	}
	return out
}

// dispatch decodes one message frame and hands it to the world layer.
func (t *TCP) dispatch(payload []byte) error {
	d := wire.NewDecoder(payload)
	src, dst, tag := d.Int(), d.Int(), d.Int()
	data := d.Any()
	if err := d.Err(); err != nil {
		return fmt.Errorf("transport: bad frame: %w", err)
	}
	t.handler(src, dst, tag, data)
	return nil
}

// Send serializes the payload and queues the frame for the peer's
// writer, dialing the connection lazily.  The payload is fully encoded
// before Send returns: the caller may mutate it afterwards.
func (t *TCP) Send(src, dst, tag int, data any) error {
	if t.closed.Load() {
		return errors.New("transport: closed")
	}
	e := wire.NewEncoder(64)
	e.Int(src)
	e.Int(dst)
	e.Int(tag)
	e.Any(data)
	return t.peer(dst).enqueue(e.Bytes())
}

// QueueDepth returns the outbound backlog for dst in frames.
func (t *TCP) QueueDepth(dst int) int {
	t.mu.Lock()
	p := t.peers[dst]
	t.mu.Unlock()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.depth
}

func (t *TCP) peer(rank int) *tcpPeer {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[rank]
	if p == nil {
		p = &tcpPeer{rank: rank}
		p.cond = sync.NewCond(&p.mu)
		t.peers[rank] = p
		t.writerWG.Add(1)
		go t.writeLoop(p)
	}
	return p
}

func (p *tcpPeer) enqueue(frame []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failed != nil {
		return p.failed
	}
	if p.closing {
		return errors.New("transport: peer connection closing")
	}
	p.queue = append(p.queue, frame)
	p.depth = len(p.queue)
	p.cond.Signal()
	return nil
}

// next blocks until a frame is queued or the peer is closing with an
// empty queue.
func (p *tcpPeer) next() ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) == 0 && !p.closing {
		p.cond.Wait()
	}
	if len(p.queue) == 0 {
		return nil, false
	}
	frame := p.queue[0]
	p.queue = p.queue[1:]
	p.depth = len(p.queue)
	return frame, true
}

// pending reports whether frames are still queued.
func (p *tcpPeer) pending() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue) > 0
}

// fail latches a send error and discards the backlog.
func (p *tcpPeer) fail(err error) {
	p.mu.Lock()
	p.failed = err
	p.queue = nil
	p.depth = 0
	p.mu.Unlock()
	p.cond.Broadcast()
}

// writeLoop dials the peer with retry + exponential backoff, sends the
// handshake, and drains the frame queue.
func (t *TCP) writeLoop(p *tcpPeer) {
	defer t.writerWG.Done()
	conn, err := t.dialBackoff(p)
	if err != nil {
		p.fail(err)
		if !t.closed.Load() {
			t.reportDown(p.rank, err)
		}
		return
	}
	defer conn.Close()
	for {
		frame, ok := p.next()
		if !ok {
			return // clean close, queue drained
		}
		conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
		if err := writeFrame(conn, frame); err != nil {
			p.fail(err)
			if !t.closed.Load() {
				t.reportDown(p.rank, err)
			}
			return
		}
		t.cfg.Observer.OnFrameSend(p.rank, len(frame))
	}
}

// dialBackoff establishes the outbound connection to p, retrying with
// exponential backoff until RetryDeadline, and sends the handshake.
func (t *TCP) dialBackoff(p *tcpPeer) (net.Conn, error) {
	if p.rank < 0 || p.rank >= len(t.cfg.Addrs) {
		return nil, fmt.Errorf("transport: no address for rank %d", p.rank)
	}
	addr := t.cfg.Addrs[p.rank]
	deadline := time.Now().Add(t.cfg.RetryDeadline)
	backoff := t.cfg.RetryBase
	var lastErr error
	for attempt := 1; ; attempt++ {
		// After Close, a pending backlog earns exactly one more dial
		// attempt (flush-if-reachable); without one there is nothing left
		// to deliver and the writer stops immediately.  Either way Close
		// is never held hostage by the retry schedule.
		closing := t.closed.Load()
		if closing && !p.pending() {
			return nil, errors.New("transport: closed")
		}
		conn, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
		if err == nil {
			e := wire.NewEncoder(16)
			e.Byte(tcpMagic[0])
			e.Byte(tcpMagic[1])
			e.Byte(tcpMagic[2])
			e.Byte(tcpMagic[3])
			e.Byte(tcpVersion)
			e.Int(t.cfg.Rank)
			e.Int(int(time.Now().UnixMicro()))
			conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
			if err := writeFrame(conn, e.Bytes()); err != nil {
				conn.Close()
				return nil, fmt.Errorf("transport: handshake to rank %d: %w", p.rank, err)
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			t.cfg.Observer.OnConnect(p.rank, attempt)
			return conn, nil
		}
		lastErr = err
		if closing {
			return nil, fmt.Errorf("transport: dial rank %d (%s) abandoned at close: %w",
				p.rank, addr, lastErr)
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("transport: dial rank %d (%s) after %d attempts: %w",
				p.rank, addr, attempt, lastErr)
		}
		// Sleep the backoff, but let Close interrupt it: an
		// uninterruptible time.Sleep here held Close hostage for up to
		// RetryMax per peer.
		select {
		case <-t.closeCh:
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > t.cfg.RetryMax {
			backoff = t.cfg.RetryMax
		}
	}
}

// Close flushes queued outbound frames, then tears all connections
// down.  Peer failures observed during and after Close are not
// reported.
func (t *TCP) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.closeCh) // wake writers sleeping in a dial backoff
	// Stop outbound writers after their queues drain (writers have write
	// deadlines, so this terminates even against a dead peer).
	t.mu.Lock()
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		p.closing = true
		p.mu.Unlock()
		p.cond.Broadcast()
	}
	t.writerWG.Wait()
	// Now stop inbound traffic.
	t.ln.Close()
	t.mu.Lock()
	for conn := range t.conns {
		conn.Close()
	}
	t.mu.Unlock()
	t.readerWG.Wait()
	return nil
}

// writeFrame writes one length-prefixed frame.
func writeFrame(conn net.Conn, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(conn net.Conn, maxFrame int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int(n) > maxFrame {
		return nil, fmt.Errorf("frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
