package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// recvQ collects delivered messages for assertions.
type recvQ struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs [][4]any // src, dst, tag, data
}

func newRecvQ() *recvQ {
	q := &recvQ{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *recvQ) handler(src, dst, tag int, data any) {
	q.mu.Lock()
	q.msgs = append(q.msgs, [4]any{src, dst, tag, data})
	q.mu.Unlock()
	q.cond.Broadcast()
}

// wait blocks until n messages arrived or the timeout elapses.
func (q *recvQ) wait(t *testing.T, n int) [][4]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	timer := time.AfterFunc(5*time.Second, q.cond.Broadcast)
	defer timer.Stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.msgs) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d/%d messages", len(q.msgs), n)
		}
		q.cond.Wait()
	}
	return append([][4]any(nil), q.msgs...)
}

// tcpPair builds two connected TCP endpoints on loopback with pre-bound
// listeners (no port races).
func tcpPair(t *testing.T) (*TCP, *TCP, *recvQ, *recvQ) {
	t.Helper()
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), ln1.Addr().String()}
	t0, err := NewTCP(TCPConfig{Rank: 0, Addrs: addrs, Listener: ln0})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTCP(TCPConfig{Rank: 1, Addrs: addrs, Listener: ln1})
	if err != nil {
		t.Fatal(err)
	}
	q0, q1 := newRecvQ(), newRecvQ()
	if err := t0.Start(q0.handler, nil); err != nil {
		t.Fatal(err)
	}
	if err := t1.Start(q1.handler, nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { t0.Close(); t1.Close() })
	return t0, t1, q0, q1
}

func TestTCPRoundTrip(t *testing.T) {
	t0, t1, q0, q1 := tcpPair(t)
	if err := t0.Send(0, 1, 7, "ping"); err != nil {
		t.Fatal(err)
	}
	if err := t0.Send(0, 1, 8, 3.5); err != nil {
		t.Fatal(err)
	}
	msgs := q1.wait(t, 2)
	if msgs[0] != [4]any{0, 1, 7, "ping"} {
		t.Errorf("first message: %v", msgs[0])
	}
	if msgs[1] != [4]any{0, 1, 8, 3.5} {
		t.Errorf("second message: %v", msgs[1])
	}
	if err := t1.Send(1, 0, 9, -42); err != nil {
		t.Fatal(err)
	}
	back := q0.wait(t, 1)
	if back[0] != [4]any{1, 0, 9, -42} {
		t.Errorf("reply: %v", back[0])
	}
}

func TestTCPSendOrderPreserved(t *testing.T) {
	t0, _, _, q1 := tcpPair(t)
	const n = 500
	for i := 0; i < n; i++ {
		if err := t0.Send(0, 1, 1, i); err != nil {
			t.Fatal(err)
		}
	}
	msgs := q1.wait(t, n)
	for i, m := range msgs {
		if m[3] != i {
			t.Fatalf("message %d carried %v", i, m[3])
		}
	}
}

// countObs counts observer callbacks.
type countObs struct {
	mu                                     sync.Mutex
	connects, accepts, retries, downs      int
	framesIn, framesOut, bytesIn, bytesOut int
}

func (o *countObs) OnConnect(peer, attempts int) {
	o.mu.Lock()
	o.connects++
	o.retries += attempts - 1
	o.mu.Unlock()
}
func (o *countObs) OnAccept(peer int) { o.mu.Lock(); o.accepts++; o.mu.Unlock() }
func (o *countObs) OnFrameSend(peer, bytes int) {
	o.mu.Lock()
	o.framesOut++
	o.bytesOut += bytes
	o.mu.Unlock()
}
func (o *countObs) OnFrameRecv(peer, bytes int) {
	o.mu.Lock()
	o.framesIn++
	o.bytesIn += bytes
	o.mu.Unlock()
}
func (o *countObs) OnPeerDown(peer int, err error) { o.mu.Lock(); o.downs++; o.mu.Unlock() }

func TestTCPDialRetryBackoff(t *testing.T) {
	// Reserve a port for rank 1 without listening on it yet, so rank
	// 0's first dials fail and the backoff loop runs.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), addr}
	obs := &countObs{}
	t0, err := NewTCP(TCPConfig{Rank: 0, Addrs: addrs, Listener: ln0,
		RetryBase: 10 * time.Millisecond, RetryDeadline: 10 * time.Second, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	q0 := newRecvQ()
	t0.Start(q0.handler, nil)
	defer t0.Close()
	if err := t0.Send(0, 1, 1, "early"); err != nil {
		t.Fatal(err)
	}

	// Bring rank 1 up after the first dials have failed.
	time.Sleep(60 * time.Millisecond)
	ln1, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not re-bind reserved port %s: %v", addr, err)
	}
	t1, err := NewTCP(TCPConfig{Rank: 1, Addrs: addrs, Listener: ln1})
	if err != nil {
		t.Fatal(err)
	}
	q1 := newRecvQ()
	t1.Start(q1.handler, nil)
	defer t1.Close()

	msgs := q1.wait(t, 1)
	if msgs[0] != [4]any{0, 1, 1, "early"} {
		t.Fatalf("message after retry: %v", msgs[0])
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.connects != 1 || obs.retries == 0 {
		t.Errorf("connects = %d, retries = %d; want 1 connect after >= 1 retry", obs.connects, obs.retries)
	}
}

func TestTCPPeerDownReported(t *testing.T) {
	downCh := make(chan int, 1)
	ln0, _ := net.Listen("tcp", "127.0.0.1:0")
	ln1, _ := net.Listen("tcp", "127.0.0.1:0")
	addrs := []string{ln0.Addr().String(), ln1.Addr().String()}
	t0, err := NewTCP(TCPConfig{Rank: 0, Addrs: addrs, Listener: ln0,
		RetryBase: 10 * time.Millisecond, RetryDeadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTCP(TCPConfig{Rank: 1, Addrs: addrs, Listener: ln1})
	if err != nil {
		t.Fatal(err)
	}
	q0, q1 := newRecvQ(), newRecvQ()
	t0.Start(q0.handler, func(peer int, err error) {
		select {
		case downCh <- peer:
		default:
		}
	})
	t1.Start(q1.handler, nil)
	defer t0.Close()

	// Establish the 1 -> 0 connection, then kill rank 1 without a
	// clean protocol goodbye while rank 0 still expects traffic.
	if err := t1.Send(1, 0, 1, "hello"); err != nil {
		t.Fatal(err)
	}
	q0.wait(t, 1)
	t1.Close()

	// Rank 0's reader sees EOF, which is indistinguishable from a
	// clean close, so drive the outbound side too: the write loop hits
	// the dead listener and reports the peer down.
	t0.Send(0, 1, 2, "are you there")
	ln1.Close()
	select {
	case peer := <-downCh:
		if peer != 1 {
			t.Fatalf("peer down for %d, want 1", peer)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("peer down never reported")
	}
}

func TestTCPRejectsBadHandshake(t *testing.T) {
	ln0, _ := net.Listen("tcp", "127.0.0.1:0")
	t0, err := NewTCP(TCPConfig{Rank: 0, Addrs: []string{ln0.Addr().String()}, Listener: ln0})
	if err != nil {
		t.Fatal(err)
	}
	q0 := newRecvQ()
	t0.Start(q0.handler, nil)
	defer t0.Close()

	conn, err := net.Dial("tcp", ln0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A length-prefixed frame with the wrong magic.
	if err := writeFrame(conn, []byte("NOPE\x01\x00")); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection on us.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection stayed open after bad handshake")
	}
	q0.mu.Lock()
	defer q0.mu.Unlock()
	if len(q0.msgs) != 0 {
		t.Fatalf("bad handshake delivered messages: %v", q0.msgs)
	}
}

func TestTCPFrameLimit(t *testing.T) {
	ln0, _ := net.Listen("tcp", "127.0.0.1:0")
	ln1, _ := net.Listen("tcp", "127.0.0.1:0")
	addrs := []string{ln0.Addr().String(), ln1.Addr().String()}
	t0, err := NewTCP(TCPConfig{Rank: 0, Addrs: addrs, Listener: ln0, MaxFrame: 64})
	if err != nil {
		t.Fatal(err)
	}
	q0 := newRecvQ()
	downCh := make(chan struct{}, 1)
	t0.Start(q0.handler, func(int, error) {
		select {
		case downCh <- struct{}{}:
		default:
		}
	})
	defer t0.Close()
	t1, err := NewTCP(TCPConfig{Rank: 1, Addrs: addrs, Listener: ln1})
	if err != nil {
		t.Fatal(err)
	}
	t1.Start(newRecvQ().handler, nil)
	defer t1.Close()

	big := make([]byte, 200)
	if err := t1.Send(1, 0, 1, string(big)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-downCh:
	case <-time.After(5 * time.Second):
		t.Fatal("oversized frame was not rejected")
	}
}

func TestRouterDelivery(t *testing.T) {
	r := NewRouter()
	a := r.Endpoint(0)
	b := r.Endpoint(1, 2)
	qa, qb := newRecvQ(), newRecvQ()
	a.Start(qa.handler, nil)
	b.Start(qb.handler, nil)

	payload := &struct{ X int }{42} // routers share pointers: no codec needed
	if err := a.Send(0, 2, 5, payload); err != nil {
		t.Fatal(err)
	}
	msgs := qb.wait(t, 1)
	if msgs[0][3] != payload {
		t.Fatal("router did not share the payload pointer")
	}
	if err := a.Send(0, 3, 1, "x"); err == nil {
		t.Fatal("send to unowned rank succeeded")
	}

	// Closing an endpoint notifies the survivors of its ranks.
	var mu sync.Mutex
	var downs []int
	c := r.Endpoint(3)
	c.Start(func(int, int, int, any) {}, func(peer int, err error) {
		mu.Lock()
		downs = append(downs, peer)
		mu.Unlock()
	})
	b.Close()
	mu.Lock()
	got := append([]int(nil), downs...)
	mu.Unlock()
	if fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("down ranks = %v, want [1 2]", got)
	}
}

// countedPayload counts its own wire encodes, so tests can prove a
// multicast serializes once however many destinations it reaches.
type countedPayload struct {
	Tag string
}

var countedEncodes atomic.Int64

func init() {
	wire.Register(200,
		func(e *wire.Encoder, p countedPayload) {
			countedEncodes.Add(1)
			e.String(p.Tag)
		},
		func(d *wire.Decoder) countedPayload { return countedPayload{Tag: d.String()} })
}

// tcpTrio builds three connected TCP endpoints on loopback.
func tcpTrio(t *testing.T) (*TCP, []*recvQ) {
	t.Helper()
	lns := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var t0 *TCP
	qs := make([]*recvQ, 3)
	for i := range lns {
		tr, err := NewTCP(TCPConfig{Rank: i, Addrs: addrs, Listener: lns[i]})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = newRecvQ()
		if err := tr.Start(qs[i].handler, nil); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		if i == 0 {
			t0 = tr
		}
	}
	return t0, qs
}

// TestTCPSendMultiEncodesOnce pins the zero-copy fan-out: one multicast
// to two peers serializes the payload exactly once and delivers to
// both, with src/dst/tag attributed per destination.
func TestTCPSendMultiEncodesOnce(t *testing.T) {
	t0, qs := tcpTrio(t)
	before := countedEncodes.Load()
	if err := t0.SendMulti(0, []int{1, 2}, 7, countedPayload{Tag: "fanout"}); err != nil {
		t.Fatal(err)
	}
	if got := countedEncodes.Load() - before; got != 1 {
		t.Errorf("multicast to 2 peers encoded %d times, want 1", got)
	}
	m1 := qs[1].wait(t, 1)
	if m1[0] != [4]any{0, 1, 7, countedPayload{Tag: "fanout"}} {
		t.Errorf("peer 1 got %v", m1[0])
	}
	m2 := qs[2].wait(t, 1)
	if m2[0] != [4]any{0, 2, 7, countedPayload{Tag: "fanout"}} {
		t.Errorf("peer 2 got %v", m2[0])
	}
}

// TestTCPBatchedFrames checks that a backlog coalesces into fewer wire
// frames than messages while every message still arrives in order, and
// that the per-message observer counts are preserved.
func TestTCPBatchedFrames(t *testing.T) {
	ln0, _ := net.Listen("tcp", "127.0.0.1:0")
	ln1, _ := net.Listen("tcp", "127.0.0.1:0")
	addrs := []string{ln0.Addr().String(), ln1.Addr().String()}
	obs := &countObs{}
	t0, err := NewTCP(TCPConfig{Rank: 0, Addrs: addrs, Listener: ln0, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	t0.Start(newRecvQ().handler, nil)
	defer t0.Close()
	t1, err := NewTCP(TCPConfig{Rank: 1, Addrs: addrs, Listener: ln1})
	if err != nil {
		t.Fatal(err)
	}
	q1 := newRecvQ()
	t1.Start(q1.handler, nil)
	defer t1.Close()

	// Queue a burst before the connection finishes dialing: the writer
	// wakes to a deep queue and must coalesce it.
	const n = 200
	for i := 0; i < n; i++ {
		if err := t0.Send(0, 1, 1, i); err != nil {
			t.Fatal(err)
		}
	}
	msgs := q1.wait(t, n)
	for i, m := range msgs {
		if m[3] != i {
			t.Fatalf("message %d carried %v", i, m[3])
		}
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.framesOut != n {
		t.Errorf("observer saw %d message sends, want %d (per-message granularity)", obs.framesOut, n)
	}
}

// TestFaultSendMultiPerDestination: the fault wrapper applies drop
// decisions per destination, not per multicast — with drop=1 nothing
// survives; with no faults every destination delivers through the
// inner multicast path.
func TestFaultSendMultiPerDestination(t *testing.T) {
	t0, qs := tcpTrio(t)
	var events []string
	var mu sync.Mutex
	f := NewFault(t0, []int{0}, FaultSpec{Seed: 1, Drop: 1, KillRank: -1},
		func(kind string, peer int) { mu.Lock(); events = append(events, kind); mu.Unlock() })
	if err := f.SendMulti(0, []int{1, 2}, 7, "doomed"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	drops := 0
	for _, e := range events {
		if e == FaultDrop {
			drops++
		}
	}
	mu.Unlock()
	if drops != 2 {
		t.Errorf("drop=1 multicast to 2 peers reported %d drops, want 2", drops)
	}

	clean := NewFault(t0, []int{0}, FaultSpec{Seed: 1, KillRank: -1}, nil)
	if MulticasterFor(clean) == nil {
		t.Fatal("fault over TCP must expose the multicast capability")
	}
	if err := clean.SendMulti(0, []int{1, 2}, 8, "alive"); err != nil {
		t.Fatal(err)
	}
	if m := qs[1].wait(t, 1); m[0] != [4]any{0, 1, 8, "alive"} {
		t.Errorf("peer 1 got %v", m[0])
	}
	if m := qs[2].wait(t, 1); m[0] != [4]any{0, 2, 8, "alive"} {
		t.Errorf("peer 2 got %v", m[0])
	}
}

// TestMulticasterForRouter: a pointer-sharing transport must not be
// offered the multicast capability, even through a fault wrapper.
func TestMulticasterForRouter(t *testing.T) {
	r := NewRouter()
	l := r.Endpoint(0)
	if MulticasterFor(l) != nil {
		t.Error("router endpoint claims multicast capability")
	}
	f := NewFault(l, []int{0}, FaultSpec{KillRank: -1}, nil)
	if MulticasterFor(f) != nil {
		t.Error("fault over router claims multicast capability")
	}
}

// TestTCPClosePromptMidBackoff: Close must not wait out a dial-retry
// backoff.  Before the close-signal channel, the writer goroutine slept
// in an uninterruptible time.Sleep(backoff), so Close blocked for up to
// RetryMax per unreachable peer.
func TestTCPClosePromptMidBackoff(t *testing.T) {
	// Reserve a port for rank 1 and close it again: dials are refused
	// instantly, so the writer spends its time in the backoff sleep.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t0, err := NewTCP(TCPConfig{Rank: 0, Addrs: []string{ln0.Addr().String(), addr}, Listener: ln0,
		RetryBase: 5 * time.Second, RetryMax: 5 * time.Second, RetryDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t0.Start(newRecvQ().handler, nil)
	if err := t0.Send(0, 1, 1, "doomed"); err != nil {
		t.Fatal(err)
	}

	// Let the first dial fail and the writer enter its 5s backoff.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	if err := t0.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("Close took %v with a writer mid-backoff; want prompt return", d)
	}
}
