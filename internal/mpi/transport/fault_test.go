package transport

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseFaultSpec(t *testing.T) {
	spec, err := ParseFaultSpec(" seed=7; drop=0.25 ;dup=0.1;delay=5ms;kill=3@40;partition=0,1|2,3;heal=60 ")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultSpec{
		Seed: 7, Drop: 0.25, Dup: 0.1, Delay: 5 * time.Millisecond,
		KillRank: 3, KillAfter: 40,
		PartA: []int{0, 1}, PartB: []int{2, 3}, Heal: 60,
	}
	if !reflect.DeepEqual(spec, want) {
		t.Errorf("parsed %+v, want %+v", spec, want)
	}
	if !spec.Active() {
		t.Error("spec should be active")
	}
	// String renders back to a parseable, equivalent spec.
	back, err := ParseFaultSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", spec.String(), err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Errorf("round trip %+v != %+v", back, spec)
	}

	empty, err := ParseFaultSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if empty.Active() {
		t.Errorf("empty spec should be inactive: %+v", empty)
	}

	for _, bad := range []string{"drop", "drop=2", "dup=-1", "delay=x", "kill=-2", "partition=0,1", "heal=-3", "frob=1"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("ParseFaultSpec(%q) accepted", bad)
		}
	}
}

// TestParseFaultSpecRejectsBadPartitions: malformed partition clauses
// must be rejected with the offending clause (and rank, for overlaps)
// named in the error, not silently accepted as a spec that drops all of
// a rank's traffic.
func TestParseFaultSpecRejectsBadPartitions(t *testing.T) {
	for _, tc := range []struct {
		spec, want string
	}{
		{"partition=0,1|1,2", "rank 1 on both sides"},
		{"partition=2|2", "rank 2 on both sides"},
		{"partition=0,-3|1", "negative rank -3"},
		{"partition=0| ", "empty rank list"},
		{"partition=0,x|1", ""},
	} {
		_, err := ParseFaultSpec(tc.spec)
		if err == nil {
			t.Errorf("ParseFaultSpec(%q) accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), "fault spec clause") {
			t.Errorf("ParseFaultSpec(%q) error %q does not name the clause", tc.spec, err)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseFaultSpec(%q) error %q, want it to contain %q", tc.spec, err, tc.want)
		}
	}
	// Disjoint sides still parse.
	spec, err := ParseFaultSpec("partition=0,1|2,3")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Active() {
		t.Error("valid partition spec should be active")
	}
}

// collector records delivered (src, tag) pairs at one endpoint.
type collector struct {
	mu   sync.Mutex
	msgs []int // tags in arrival order
}

func (c *collector) handler(src, dst, tag int, data any) {
	c.mu.Lock()
	c.msgs = append(c.msgs, tag)
	c.mu.Unlock()
}

func (c *collector) tags() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.msgs...)
}

// faultPair wires ranks 0 and 1 through a router, wrapping rank 0's
// endpoint in a Fault with the given spec.
func faultPair(t *testing.T, spec FaultSpec, events func(string, int)) (*Fault, *collector) {
	t.Helper()
	r := NewRouter()
	e0 := r.Endpoint(0)
	e1 := r.Endpoint(1)
	f := NewFault(e0, []int{0}, spec, events)
	if err := f.Start(func(src, dst, tag int, data any) {}, nil); err != nil {
		t.Fatal(err)
	}
	var got collector
	if err := e1.Start(got.handler, nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close(); e1.Close() })
	return f, &got
}

// TestFaultDropDeterministic: the same seed drops the same frames; a
// different seed drops a different set.
func TestFaultDropDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		f, got := faultPair(t, FaultSpec{Seed: seed, Drop: 0.5, KillRank: -1}, nil)
		for i := 0; i < 64; i++ {
			if err := f.Send(0, 1, i, "x"); err != nil {
				t.Fatal(err)
			}
		}
		return got.tags()
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different drop schedule: %v vs %v", a, b)
	}
	if len(a) == 0 || len(a) == 64 {
		t.Errorf("drop=0.5 delivered %d/64 frames", len(a))
	}
	c := run(8)
	if reflect.DeepEqual(a, c) {
		t.Errorf("different seeds produced identical schedules")
	}
}

// TestFaultDup: duplicated frames arrive twice.
func TestFaultDup(t *testing.T) {
	f, got := faultPair(t, FaultSpec{Seed: 3, Dup: 1, KillRank: -1}, nil)
	for i := 0; i < 4; i++ {
		if err := f.Send(0, 1, i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if want := []int{0, 0, 1, 1, 2, 2, 3, 3}; !reflect.DeepEqual(got.tags(), want) {
		t.Errorf("dup=1 delivered %v, want %v", got.tags(), want)
	}
}

// TestFaultKill: the endpoint goes silent after KillAfter frames, in
// both directions, and reports the kill event exactly once.
func TestFaultKill(t *testing.T) {
	var mu sync.Mutex
	kills := 0
	events := func(kind string, peer int) {
		if kind == FaultKill {
			mu.Lock()
			kills++
			mu.Unlock()
		}
	}

	r := NewRouter()
	e0 := r.Endpoint(0)
	e1 := r.Endpoint(1)
	f := NewFault(e0, []int{0}, FaultSpec{KillRank: 0, KillAfter: 3}, events)
	var at0, at1 collector
	if err := f.Start(at0.handler, nil); err != nil {
		t.Fatal(err)
	}
	if err := e1.Start(at1.handler, nil); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer e1.Close()

	// Outbound: frames 1..3 pass, the 4th and later are cut.
	for i := 0; i < 6; i++ {
		if err := f.Send(0, 1, i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(at1.tags(), want) {
		t.Errorf("after kill, peer saw %v, want %v", at1.tags(), want)
	}
	// Inbound is cut too (the killed endpoint counts these frames but
	// never delivers them).
	for i := 0; i < 3; i++ {
		if err := e1.Send(1, 0, 100+i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if len(at0.tags()) != 0 {
		t.Errorf("killed endpoint still delivered %v", at0.tags())
	}
	mu.Lock()
	defer mu.Unlock()
	if kills != 1 {
		t.Errorf("kill event fired %d times, want 1", kills)
	}
}

// TestFaultKillOtherRank: a kill spec naming a remote rank leaves this
// endpoint untouched (every process shares one spec; only the named
// rank dies).
func TestFaultKillOtherRank(t *testing.T) {
	f, got := faultPair(t, FaultSpec{KillRank: 1, KillAfter: 0}, nil)
	for i := 0; i < 4; i++ {
		if err := f.Send(0, 1, i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if len(got.tags()) != 4 {
		t.Errorf("kill of remote rank cut local traffic: delivered %v", got.tags())
	}
}

// TestFaultPartition: frames crossing the cut vanish, frames inside a
// side pass.
func TestFaultPartition(t *testing.T) {
	r := NewRouter()
	e0 := r.Endpoint(0)
	e1 := r.Endpoint(1)
	e2 := r.Endpoint(2)
	spec := FaultSpec{KillRank: -1, PartA: []int{0, 1}, PartB: []int{2}}
	f := NewFault(e0, []int{0}, spec, nil)
	if err := f.Start(func(int, int, int, any) {}, nil); err != nil {
		t.Fatal(err)
	}
	var at1, at2 collector
	if err := e1.Start(at1.handler, nil); err != nil {
		t.Fatal(err)
	}
	if err := e2.Start(at2.handler, nil); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer e1.Close()
	defer e2.Close()

	if err := f.Send(0, 1, 1, "x"); err != nil { // same side: passes
		t.Fatal(err)
	}
	if err := f.Send(0, 2, 2, "x"); err != nil { // crosses: cut
		t.Fatal(err)
	}
	if !reflect.DeepEqual(at1.tags(), []int{1}) {
		t.Errorf("same-side frame lost: %v", at1.tags())
	}
	if len(at2.tags()) != 0 {
		t.Errorf("cross-partition frame delivered: %v", at2.tags())
	}
}

// TestFaultPartitionHeals: with heal=N the partition severs only the
// first N frames; later frames cross the former cut.
func TestFaultPartitionHeals(t *testing.T) {
	spec := FaultSpec{KillRank: -1, PartA: []int{0}, PartB: []int{1}, Heal: 3}
	f, got := faultPair(t, spec, nil)
	for i := 0; i < 6; i++ {
		if err := f.Send(0, 1, i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	// Frames 1..3 are cut (counter is 1-based); 4..6 pass, carrying
	// tags 3, 4, 5.
	if want := []int{3, 4, 5}; !reflect.DeepEqual(got.tags(), want) {
		t.Errorf("healed partition delivered %v, want %v", got.tags(), want)
	}
}
