package compiler

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sial"
)

// TestCompileExamplePrograms compiles every .sial file shipped under
// examples/sial, validates the byte code, and round-trips it through
// the formatter.
func TestCompileExamplePrograms(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "sial")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("examples/sial missing: %v", err)
	}
	count := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".sial") {
			continue
		}
		count++
		t.Run(e.Name(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := CompileSource(string(src))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			// Formatter round trip: parse -> format -> compile again.
			ast, err := sial.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			formatted := sial.Format(ast)
			prog2, err := CompileSource(formatted)
			if err != nil {
				t.Fatalf("compile of formatted source: %v\n%s", err, formatted)
			}
			if len(prog2.Code) != len(prog.Code) {
				t.Fatalf("formatted program compiles to %d instructions, original %d",
					len(prog2.Code), len(prog.Code))
			}
		})
	}
	if count < 5 {
		t.Fatalf("only %d example programs found, want >= 5", count)
	}
}
