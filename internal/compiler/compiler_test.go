package compiler

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
)

const paperSrc = `
sial ccsd_term
param norb = 4
param nocc = 2
aoindex M = 1, norb
aoindex N = 1, norb
aoindex L = 1, norb
aoindex S = 1, norb
moindex I = 1, nocc
moindex J = 1, nocc
distributed T(L,S,I,J)
distributed R(M,N,I,J)
temp V(M,N,L,S)
temp tmp(M,N,I,J)
temp tmpsum(M,N,I,J)
pardo M, N, I, J
  tmpsum(M,N,I,J) = 0.0
  do L
    do S
      get T(L,S,I,J)
      compute_integrals V(M,N,L,S)
      tmp(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J)
      tmpsum(M,N,I,J) += tmp(M,N,I,J)
    enddo S
  enddo L
  put R(M,N,I,J) = tmpsum(M,N,I,J)
endpardo M, N, I, J
sip_barrier
endsial
`

func compile(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	p, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	// Every compiled program must pass byte-code validation.
	if err := p.Validate(); err != nil {
		t.Fatalf("compiled program fails validation: %v\n%s", err, p.Disassemble())
	}
	return p
}

// ops extracts the opcode sequence.
func ops(p *bytecode.Program) []bytecode.Op {
	out := make([]bytecode.Op, len(p.Code))
	for i, in := range p.Code {
		out[i] = in.Op
	}
	return out
}

func TestCompilePaperExample(t *testing.T) {
	p := compile(t, paperSrc)
	if p.Name != "ccsd_term" {
		t.Fatalf("name %q", p.Name)
	}
	if len(p.Params) != 2 || len(p.Indices) != 6 || len(p.Arrays) != 5 {
		t.Fatalf("tables: %d params %d indices %d arrays", len(p.Params), len(p.Indices), len(p.Arrays))
	}
	if len(p.Pardos) != 1 || len(p.Pardos[0].Indices) != 4 {
		t.Fatalf("pardos: %+v", p.Pardos)
	}
	want := []bytecode.Op{
		bytecode.OpPardoStart,
		bytecode.OpPushLit, bytecode.OpBlockFill,
		bytecode.OpDoStart,
		bytecode.OpDoStart,
		bytecode.OpGet,
		bytecode.OpComputeIntegrals,
		bytecode.OpContract,
		bytecode.OpBlockCopy, // tmpsum += tmp compiles to copy with add mode
		bytecode.OpDoEnd,
		bytecode.OpDoEnd,
		bytecode.OpPut,
		bytecode.OpPardoEnd,
		bytecode.OpBarrier,
		bytecode.OpHalt,
	}
	got := ops(p)
	if len(got) != len(want) {
		t.Fatalf("code length %d, want %d:\n%s", len(got), len(want), p.Disassemble())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %s, want %s:\n%s", i, got[i], want[i], p.Disassemble())
		}
	}
	// Jump targets: pardo exit must be the instruction after PardoEnd.
	if p.Code[0].C != 13 {
		t.Fatalf("pardo exit = %d, want 13", p.Code[0].C)
	}
	if p.Code[12].B != 0 {
		t.Fatalf("pardo end start = %d, want 0", p.Code[12].B)
	}
	// += assign mode on the accumulate.
	if p.Code[8].B != bytecode.AssignAdd {
		t.Fatalf("accumulate mode = %d, want AssignAdd", p.Code[8].B)
	}
	// Contraction refs carry index ids usable as labels.
	c := p.Code[7]
	if len(c.R[1].Idx) != 4 || len(c.R[2].Idx) != 4 || len(c.R[0].Idx) != 4 {
		t.Fatalf("contract refs: %+v", c.R)
	}
}

func TestCompilePermutation(t *testing.T) {
	p := compile(t, `
sial perm
aoindex I = 1, 4
aoindex J = 1, 4
aoindex K = 1, 4
temp V1(K,J,I)
temp V2(I,J,K)
do I
do J
do K
  V1(K,J,I) = V2(I,J,K)
enddo
enddo
enddo
endsial`)
	var found bool
	for _, in := range p.Code {
		if in.Op == bytecode.OpBlockCopy {
			found = true
			// dst dims (K,J,I) map to src (I,J,K): perm = [2,1,0].
			if len(in.Aux) != 3 || in.Aux[0] != 2 || in.Aux[1] != 1 || in.Aux[2] != 0 {
				t.Fatalf("perm = %v, want [2 1 0]", in.Aux)
			}
		}
	}
	if !found {
		t.Fatal("no block copy emitted")
	}
}

func TestCompileSliceInsertModes(t *testing.T) {
	p := compile(t, `
sial subs
moaindex i = 1, 8
moaindex j = 1, 8
subindex ii of i
temp Xi(i,j)
temp Xii(ii,j)
do j
do i
do ii in i
  Xii(ii,j) = Xi(ii,j)
  Xi(ii,j) = Xii(ii,j)
enddo
enddo
enddo
endsial`)
	var modes []int
	for _, in := range p.Code {
		if in.Op == bytecode.OpBlockCopy {
			modes = append(modes, in.A)
		}
	}
	if len(modes) != 2 || modes[0] != bytecode.CopySlice || modes[1] != bytecode.CopyInsert {
		t.Fatalf("copy modes = %v, want [slice insert]", modes)
	}
}

func TestCompileWhere(t *testing.T) {
	p := compile(t, `
sial wh
param n = 8
aoindex I = 1, n
aoindex J = 1, n
pardo I, J where I <= J where I + 1 < n
endpardo
endsial`)
	w := p.Pardos[0].Where
	if len(w) != 2 {
		t.Fatalf("where count = %d", len(w))
	}
	if w[0].Cmp != bytecode.CmpLE || w[0].L.Op != bytecode.WhereIndex || w[0].R.Op != bytecode.WhereIndex {
		t.Fatalf("where[0] = %+v", w[0])
	}
	if w[1].L.Op != bytecode.WhereAdd || w[1].R.Op != bytecode.WhereParam {
		t.Fatalf("where[1] = %+v", w[1])
	}
}

func TestCompileIfElseJumps(t *testing.T) {
	p := compile(t, `
sial cond
scalar x = 1
scalar y
if x < 2
  y = 10
else
  y = 20
endif
endsial`)
	dis := p.Disassemble()
	if !strings.Contains(dis, "jump_if_false") || !strings.Contains(dis, "jump") {
		t.Fatalf("missing jumps:\n%s", dis)
	}
	// Execute mentally: find OpJumpIfFalse target points into else.
	var jf *bytecode.Instr
	for i := range p.Code {
		if p.Code[i].Op == bytecode.OpJumpIfFalse {
			jf = &p.Code[i]
		}
	}
	if jf == nil {
		t.Fatal("no jump_if_false")
	}
	// Target instruction must be the start of the else branch (a push).
	if p.Code[jf.A].Op != bytecode.OpPushLit {
		t.Fatalf("else target op = %s", p.Code[jf.A].Op)
	}
}

func TestCompileProcEntries(t *testing.T) {
	p := compile(t, `
sial procs
scalar s
proc a
  s = 1
endproc
proc b
  call a
endproc
call b
endsial`)
	if len(p.Procs) != 2 {
		t.Fatalf("procs = %d", len(p.Procs))
	}
	for _, pr := range p.Procs {
		if pr.Entry <= 0 || pr.Entry >= len(p.Code) {
			t.Fatalf("proc %s entry %d out of range", pr.Name, pr.Entry)
		}
	}
	// Code after Halt must contain the bodies followed by returns.
	var haltAt int
	for i, in := range p.Code {
		if in.Op == bytecode.OpHalt {
			haltAt = i
			break
		}
	}
	returns := 0
	for _, in := range p.Code[haltAt:] {
		if in.Op == bytecode.OpReturn {
			returns++
		}
	}
	if returns != 2 {
		t.Fatalf("returns after halt = %d, want 2", returns)
	}
}

func TestCompileExecuteArgs(t *testing.T) {
	p := compile(t, `
sial exe
aoindex I = 1, 4
temp a(I,I)
temp b(I,I)
scalar s
do I
  execute my_op a(I,I), b(I,I), s
enddo
endsial`)
	var ex *bytecode.Instr
	for i := range p.Code {
		if p.Code[i].Op == bytecode.OpExecute {
			ex = &p.Code[i]
		}
	}
	if ex == nil {
		t.Fatal("no execute emitted")
	}
	if ex.B != 2 || len(ex.Aux) != 1 {
		t.Fatalf("execute blocks=%d scalars=%v", ex.B, ex.Aux)
	}
	if p.Strings[ex.A] != "my_op" {
		t.Fatalf("execute name %q", p.Strings[ex.A])
	}
}

func TestCompileTooManyExecuteBlocks(t *testing.T) {
	_, err := CompileSource(`
sial exe
aoindex I = 1, 4
temp a(I,I)
do I
  execute my_op a(I,I), a(I,I), a(I,I), a(I,I)
enddo
endsial`)
	if err == nil || !strings.Contains(err.Error(), "at most 3") {
		t.Fatalf("expected block-arg limit error, got %v", err)
	}
}

func TestCompileSourceErrors(t *testing.T) {
	if _, err := CompileSource("not sial"); err == nil {
		t.Fatal("parse error expected")
	}
	if _, err := CompileSource("sial x\ncall nothing\nendsial"); err == nil {
		t.Fatal("check error expected")
	}
}
