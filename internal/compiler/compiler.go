// Package compiler translates checked SIAL programs into SIA byte code
// (paper §V-A).  The SIAL compiler deliberately performs no sophisticated
// optimization: the paper notes that the transparency of the relationship
// between source and byte code is what makes SIAL programs easy to tune.
package compiler

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/sial"
)

// Compile translates a checked program into byte code.
func Compile(c *sial.Checked) (*bytecode.Program, error) {
	cc := &compiler{checked: c, prog: &bytecode.Program{Name: c.Prog.Name}}
	return cc.run()
}

// CompileSource parses, checks, and compiles SIAL source text.
func CompileSource(src string) (*bytecode.Program, error) {
	prog, err := sial.Parse(src)
	if err != nil {
		return nil, err
	}
	checked, err := sial.Check(prog)
	if err != nil {
		return nil, err
	}
	return Compile(checked)
}

type compiler struct {
	checked *sial.Checked
	prog    *bytecode.Program
	strings map[string]int
	inPardo bool
}

func (cc *compiler) run() (*bytecode.Program, error) {
	c, p := cc.checked, cc.prog
	cc.strings = map[string]int{}

	for _, pr := range c.Params {
		p.Params = append(p.Params, bytecode.Param{Name: pr.Name, Default: pr.Default, HasDefault: pr.HasDefault})
	}
	for _, ix := range c.Indices {
		info := bytecode.IndexInfo{
			Name:   ix.Name,
			Kind:   ix.Kind,
			Lo:     cc.val(ix.Lo),
			Hi:     cc.val(ix.Hi),
			Parent: -1,
		}
		if ix.Parent != nil {
			info.Parent = ix.Parent.ID
		}
		p.Indices = append(p.Indices, info)
	}
	for _, a := range c.Arrays {
		dims := make([]int, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = d.ID
		}
		p.Arrays = append(p.Arrays, bytecode.ArrayInfo{Name: a.Name, Kind: arrayKind(a.Kind), Dims: dims})
	}
	for _, s := range c.Scalars {
		p.Scalars = append(p.Scalars, bytecode.ScalarInfo{Name: s.Name, Init: s.Init})
	}
	for _, pr := range c.Procs {
		p.Procs = append(p.Procs, bytecode.ProcInfo{Name: pr.Name, Entry: -1})
	}

	if err := cc.stmts(c.Prog.Body); err != nil {
		return nil, err
	}
	cc.emit(bytecode.Instr{Op: bytecode.OpHalt})

	for i, pr := range c.Procs {
		p.Procs[i].Entry = len(p.Code)
		if err := cc.stmts(pr.Body); err != nil {
			return nil, err
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpReturn})
	}
	return p, nil
}

func arrayKind(k sial.ArrayKind) bytecode.ArrayKind {
	switch k {
	case sial.KindStatic:
		return bytecode.ArrayStatic
	case sial.KindDistributed:
		return bytecode.ArrayDistributed
	case sial.KindServed:
		return bytecode.ArrayServed
	case sial.KindTemp:
		return bytecode.ArrayTemp
	case sial.KindLocal:
		return bytecode.ArrayLocal
	}
	panic(fmt.Sprintf("compiler: bad array kind %v", k))
}

func assignMode(k sial.AssignKind) int {
	switch k {
	case sial.AssignSet:
		return bytecode.AssignSet
	case sial.AssignAdd:
		return bytecode.AssignAdd
	case sial.AssignSub:
		return bytecode.AssignSub
	case sial.AssignMul:
		return bytecode.AssignMul
	}
	panic("compiler: bad assign kind")
}

func cmpCode(op sial.TokKind) int {
	switch op {
	case sial.TokLT:
		return bytecode.CmpLT
	case sial.TokLE:
		return bytecode.CmpLE
	case sial.TokGT:
		return bytecode.CmpGT
	case sial.TokGE:
		return bytecode.CmpGE
	case sial.TokEQ:
		return bytecode.CmpEQ
	case sial.TokNE:
		return bytecode.CmpNE
	}
	panic("compiler: bad comparison operator")
}

func (cc *compiler) val(v sial.IntVal) bytecode.Val {
	if v.Param != "" {
		return bytecode.ParamVal(cc.paramID(v.Param))
	}
	return bytecode.LitVal(v.Lit)
}

func (cc *compiler) paramID(name string) int {
	for i, p := range cc.prog.Params {
		if p.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("compiler: unknown parameter %q (checker should have caught this)", name))
}

func (cc *compiler) stringID(s string) int {
	if id, ok := cc.strings[s]; ok {
		return id
	}
	id := len(cc.prog.Strings)
	cc.prog.Strings = append(cc.prog.Strings, s)
	cc.strings[s] = id
	return id
}

func (cc *compiler) emit(in bytecode.Instr) int {
	cc.prog.Code = append(cc.prog.Code, in)
	return len(cc.prog.Code) - 1
}

func (cc *compiler) ref(r sial.BlockRef) bytecode.Ref {
	arr := cc.checked.ArrayByName[r.Array]
	idx := make([]int, len(r.Idx))
	for i, name := range r.Idx {
		idx[i] = cc.checked.IndexByName[name].ID
	}
	return bytecode.Ref{Arr: arr.ID, Idx: idx}
}

func (cc *compiler) stmts(list []sial.Stmt) error {
	for _, s := range list {
		if err := cc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (cc *compiler) stmt(s sial.Stmt) error {
	line := s.StmtPos().Line
	switch s := s.(type) {
	case *sial.Pardo:
		return cc.pardo(s)
	case *sial.Do:
		idx := cc.checked.IndexByName[s.Idx].ID
		start := cc.emit(bytecode.Instr{Op: bytecode.OpDoStart, A: idx, Line: line})
		if err := cc.stmts(s.Body); err != nil {
			return err
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpDoEnd, A: idx, B: start, Line: line})
		cc.prog.Code[start].C = len(cc.prog.Code)
		return nil
	case *sial.DoIn:
		sub := cc.checked.IndexByName[s.Sub].ID
		super := cc.checked.IndexByName[s.Super].ID
		start := cc.emit(bytecode.Instr{Op: bytecode.OpDoInStart, A: sub, B: super, Line: line})
		if err := cc.stmts(s.Body); err != nil {
			return err
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpDoInEnd, A: sub, B: start, Line: line})
		cc.prog.Code[start].C = len(cc.prog.Code)
		return nil
	case *sial.If:
		if err := cc.scalarExpr(s.Cond.L, line); err != nil {
			return err
		}
		if err := cc.scalarExpr(s.Cond.R, line); err != nil {
			return err
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpCmp, A: cmpCode(s.Cond.Op), Line: line})
		jf := cc.emit(bytecode.Instr{Op: bytecode.OpJumpIfFalse, Line: line})
		if err := cc.stmts(s.Then); err != nil {
			return err
		}
		if len(s.Else) > 0 {
			j := cc.emit(bytecode.Instr{Op: bytecode.OpJump, Line: line})
			cc.prog.Code[jf].A = len(cc.prog.Code)
			if err := cc.stmts(s.Else); err != nil {
				return err
			}
			cc.prog.Code[j].A = len(cc.prog.Code)
		} else {
			cc.prog.Code[jf].A = len(cc.prog.Code)
		}
		return nil
	case *sial.Get:
		cc.emit(bytecode.Instr{Op: bytecode.OpGet, R: [3]bytecode.Ref{cc.ref(s.Ref)}, Line: line})
		return nil
	case *sial.Put:
		mode := 0
		if s.Acc {
			mode = 1
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpPut, A: mode,
			R: [3]bytecode.Ref{cc.ref(s.Dst), cc.ref(s.Src)}, Line: line})
		return nil
	case *sial.Request:
		cc.emit(bytecode.Instr{Op: bytecode.OpRequest, R: [3]bytecode.Ref{cc.ref(s.Ref)}, Line: line})
		return nil
	case *sial.Prepare:
		mode := 0
		if s.Acc {
			mode = 1
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpPrepare, A: mode,
			R: [3]bytecode.Ref{cc.ref(s.Dst), cc.ref(s.Src)}, Line: line})
		return nil
	case *sial.ComputeIntegrals:
		cc.emit(bytecode.Instr{Op: bytecode.OpComputeIntegrals, R: [3]bytecode.Ref{cc.ref(s.Ref)}, Line: line})
		return nil
	case *sial.Execute:
		if len(s.Blocks) > 3 {
			return fmt.Errorf("compiler: %s: execute %s: at most 3 block arguments supported, got %d",
				s.Pos, s.Name, len(s.Blocks))
		}
		in := bytecode.Instr{Op: bytecode.OpExecute, A: cc.stringID(s.Name), B: len(s.Blocks), Line: line}
		for i, b := range s.Blocks {
			in.R[i] = cc.ref(b)
		}
		for _, sc := range s.Scalars {
			in.Aux = append(in.Aux, cc.prog.ScalarID(sc))
		}
		cc.emit(in)
		return nil
	case *sial.Call:
		id := -1
		for i, pr := range cc.prog.Procs {
			if pr.Name == s.Name {
				id = i
			}
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpCall, A: id, Line: line})
		return nil
	case *sial.Barrier:
		kind := 0
		if s.Server {
			kind = 1
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpBarrier, A: kind, Line: line})
		return nil
	case *sial.Collective:
		cc.emit(bytecode.Instr{Op: bytecode.OpCollective, A: cc.prog.ScalarID(s.Name), Line: line})
		return nil
	case *sial.Print:
		strID, scID := -1, -1
		if s.Text != "" {
			strID = cc.stringID(s.Text)
		}
		if s.Scalar != "" {
			scID = cc.prog.ScalarID(s.Scalar)
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpPrint, A: strID, B: scID, Line: line})
		return nil
	case *sial.BlocksToList:
		cc.emit(bytecode.Instr{Op: bytecode.OpBlocksToList, A: cc.prog.ArrayID(s.Array), Line: line})
		return nil
	case *sial.ListToBlocks:
		cc.emit(bytecode.Instr{Op: bytecode.OpListToBlocks, A: cc.prog.ArrayID(s.Array), Line: line})
		return nil
	case *sial.ScalarAssign:
		if err := cc.scalarExpr(s.Expr, line); err != nil {
			return err
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpStoreScalar, A: cc.prog.ScalarID(s.Dst),
			B: assignMode(s.Kind), Line: line})
		return nil
	case *sial.BlockAssign:
		return cc.blockAssign(s, line)
	}
	return fmt.Errorf("compiler: unhandled statement %T", s)
}

func (cc *compiler) pardo(s *sial.Pardo) error {
	line := s.Pos.Line
	info := bytecode.PardoInfo{}
	for _, name := range s.Idx {
		info.Indices = append(info.Indices, cc.checked.IndexByName[name].ID)
	}
	for _, w := range s.Where {
		l, err := cc.whereExpr(w.L)
		if err != nil {
			return err
		}
		r, err := cc.whereExpr(w.R)
		if err != nil {
			return err
		}
		info.Where = append(info.Where, bytecode.WhereCond{Cmp: cmpCode(w.Op), L: l, R: r})
	}
	pid := len(cc.prog.Pardos)
	cc.prog.Pardos = append(cc.prog.Pardos, info)
	start := cc.emit(bytecode.Instr{Op: bytecode.OpPardoStart, A: pid, Line: line})
	cc.inPardo = true
	err := cc.stmts(s.Body)
	cc.inPardo = false
	if err != nil {
		return err
	}
	cc.emit(bytecode.Instr{Op: bytecode.OpPardoEnd, A: pid, B: start, Line: line})
	cc.prog.Code[start].C = len(cc.prog.Code)
	return nil
}

// whereExpr compiles a where-clause operand to the master-evaluable
// expression tree.
func (cc *compiler) whereExpr(e sial.ScalarExpr) (*bytecode.WhereExpr, error) {
	switch e := e.(type) {
	case *sial.NumLit:
		return &bytecode.WhereExpr{Op: bytecode.WhereLit, Val: e.Val}, nil
	case *sial.ScalarRef:
		if ix := cc.checked.IndexByName[e.Name]; ix != nil {
			return &bytecode.WhereExpr{Op: bytecode.WhereIndex, ID: ix.ID}, nil
		}
		if cc.checked.ParamByName[e.Name] != nil {
			return &bytecode.WhereExpr{Op: bytecode.WhereParam, ID: cc.paramID(e.Name)}, nil
		}
		return nil, fmt.Errorf("compiler: where clause operand %q is not an index or parameter", e.Name)
	case *sial.BinExpr:
		l, err := cc.whereExpr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.whereExpr(e.R)
		if err != nil {
			return nil, err
		}
		var op bytecode.WhereOp
		switch e.Op {
		case sial.TokPlus:
			op = bytecode.WhereAdd
		case sial.TokMinus:
			op = bytecode.WhereSub
		case sial.TokStar:
			op = bytecode.WhereMul
		case sial.TokSlash:
			op = bytecode.WhereDiv
		default:
			return nil, fmt.Errorf("compiler: bad where operator")
		}
		return &bytecode.WhereExpr{Op: op, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("compiler: unsupported where expression %T", e)
}

// refUsesSub reports whether the reference addresses a subblock: a
// subindex variable used against a dimension declared with its super
// index.
func (cc *compiler) refUsesSub(r sial.BlockRef) bool {
	arr := cc.checked.ArrayByName[r.Array]
	for i, name := range r.Idx {
		v := cc.checked.IndexByName[name]
		if v.Parent != nil && arr.Dims[i].Parent == nil {
			return true
		}
	}
	return false
}

func (cc *compiler) blockAssign(s *sial.BlockAssign, line int) error {
	dst := cc.ref(s.Dst)
	mode := assignMode(s.Kind)
	switch e := s.Expr.(type) {
	case *sial.BlockFill:
		if err := cc.scalarExpr(e.Val, line); err != nil {
			return err
		}
		if s.Kind == sial.AssignMul {
			// t(...) *= s: in-place scale.
			cc.emit(bytecode.Instr{Op: bytecode.OpBlockScale, B: bytecode.AssignSet,
				R: [3]bytecode.Ref{dst, dst}, Line: line})
			return nil
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpBlockFill, B: mode, R: [3]bytecode.Ref{dst}, Line: line})
		return nil
	case *sial.BlockCopy:
		src := cc.ref(e.Src)
		copyMode := 0
		if cc.refUsesSub(e.Src) {
			copyMode |= bytecode.CopySlice
		}
		if cc.refUsesSub(s.Dst) {
			copyMode |= bytecode.CopyInsert
		}
		in := bytecode.Instr{Op: bytecode.OpBlockCopy, A: copyMode, B: mode,
			R: [3]bytecode.Ref{dst, src}, Line: line}
		if copyMode == bytecode.CopyPermute {
			perm, err := permutation(s.Dst.Idx, e.Src.Idx)
			if err != nil {
				return fmt.Errorf("compiler: %s: %w", s.Pos, err)
			}
			in.Aux = perm
		}
		cc.emit(in)
		return nil
	case *sial.BlockScale:
		if err := cc.scalarExpr(e.Val, line); err != nil {
			return err
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpBlockScale, B: mode,
			R: [3]bytecode.Ref{dst, cc.ref(e.Src)}, Line: line})
		return nil
	case *sial.BlockSum:
		op := 0
		if e.Op == sial.TokMinus {
			op = 1
		}
		cc.emit(bytecode.Instr{Op: bytecode.OpBlockSum, A: op, B: mode,
			R: [3]bytecode.Ref{dst, cc.ref(e.A), cc.ref(e.B)}, Line: line})
		return nil
	case *sial.BlockContract:
		cc.emit(bytecode.Instr{Op: bytecode.OpContract, B: mode,
			R: [3]bytecode.Ref{dst, cc.ref(e.A), cc.ref(e.B)}, Line: line})
		return nil
	}
	return fmt.Errorf("compiler: unhandled block expression %T", s.Expr)
}

// permutation computes perm such that dst dimension d corresponds to src
// dimension perm[d], matching index variables by name.  Duplicate
// variables were restricted to identical order by the checker, so taking
// the first unconsumed occurrence is correct.
func permutation(dst, src []string) ([]int, error) {
	used := make([]bool, len(src))
	perm := make([]int, len(dst))
	for d, name := range dst {
		found := -1
		for i, s := range src {
			if !used[i] && s == name {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("no source dimension for index %q", name)
		}
		used[found] = true
		perm[d] = found
	}
	return perm, nil
}

func (cc *compiler) scalarExpr(e sial.ScalarExpr, line int) error {
	switch e := e.(type) {
	case *sial.NumLit:
		cc.emit(bytecode.Instr{Op: bytecode.OpPushLit, F: e.Val, Line: line})
		return nil
	case *sial.ScalarRef:
		if id := cc.prog.ScalarID(e.Name); id >= 0 {
			cc.emit(bytecode.Instr{Op: bytecode.OpPushScalar, A: id, Line: line})
			return nil
		}
		if cc.checked.ParamByName[e.Name] != nil {
			cc.emit(bytecode.Instr{Op: bytecode.OpPushParam, A: cc.paramID(e.Name), Line: line})
			return nil
		}
		if ix := cc.checked.IndexByName[e.Name]; ix != nil {
			cc.emit(bytecode.Instr{Op: bytecode.OpPushIndex, A: ix.ID, Line: line})
			return nil
		}
		return fmt.Errorf("compiler: unknown name %q", e.Name)
	case *sial.IndexRef:
		ix := cc.checked.IndexByName[e.Name]
		cc.emit(bytecode.Instr{Op: bytecode.OpPushIndex, A: ix.ID, Line: line})
		return nil
	case *sial.BinExpr:
		if err := cc.scalarExpr(e.L, line); err != nil {
			return err
		}
		if err := cc.scalarExpr(e.R, line); err != nil {
			return err
		}
		var op bytecode.Op
		switch e.Op {
		case sial.TokPlus:
			op = bytecode.OpAdd
		case sial.TokMinus:
			op = bytecode.OpSub
		case sial.TokStar:
			op = bytecode.OpMul
		case sial.TokSlash:
			op = bytecode.OpDiv
		default:
			return fmt.Errorf("compiler: bad scalar operator %v", e.Op)
		}
		cc.emit(bytecode.Instr{Op: op, Line: line})
		return nil
	case *sial.DotExpr:
		cc.emit(bytecode.Instr{Op: bytecode.OpDot,
			R: [3]bytecode.Ref{{}, cc.ref(e.A), cc.ref(e.B)}, Line: line})
		return nil
	}
	return fmt.Errorf("compiler: unhandled scalar expression %T", e)
}
