// The fuzz target lives in an external test package so it can import
// the packages that register codecs (block, mpi, sip) without an
// import cycle: their init functions both install the codecs and
// record the corpus samples the fuzzer seeds from.
package wire_test

import (
	"testing"

	_ "repro/internal/block"
	_ "repro/internal/mpi"
	_ "repro/internal/sip"
	"repro/internal/wire"
)

// TestCorpusCoversRegistry keeps the seed corpus honest: every
// registered wire id must contribute at least one sample, so a new
// codec cannot land without joining the fuzzer's ancestry.
func TestCorpusCoversRegistry(t *testing.T) {
	have := map[byte]bool{}
	for _, seed := range wire.Corpus() {
		if len(seed) > 0 {
			have[seed[0]] = true
		}
	}
	for _, id := range wire.RegisteredIDs() {
		if !have[id] {
			t.Errorf("no corpus sample for wire id %d", id)
		}
	}
}

// TestCorpusRoundTrips decodes every seed and re-encodes the result,
// pinning the happy path the fuzzer mutates away from.
func TestCorpusRoundTrips(t *testing.T) {
	for i, seed := range wire.Corpus() {
		v, err := wire.Decode(seed)
		if err != nil {
			t.Fatalf("corpus[%d] (id %d): %v", i, seed[0], err)
		}
		if buf := wire.Encode(v); len(buf) == 0 {
			t.Fatalf("corpus[%d] (id %d): empty re-encode", i, seed[0])
		}
	}
}

// FuzzDecode throws mutated frames at the full codec registry.  The
// invariant: Decode either fails cleanly or yields a value that can be
// re-encoded and re-decoded — never a panic, never an OOM from a
// hostile length prefix (the bug class of the wrapped Float64s guard).
func FuzzDecode(f *testing.F) {
	for _, seed := range wire.Corpus() {
		f.Add(seed)
	}
	// A few hand-built hostile frames: wrapped and huge length prefixes.
	for _, n := range []uint64{1 << 61, 1 << 50, 1<<64 - 1} {
		e := wire.NewEncoder(16)
		e.Byte(8) // block id: dims + float64s, both length-prefixed
		e.Uvarint(n)
		f.Add(e.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := wire.Decode(data)
		if err != nil {
			return
		}
		buf := wire.Encode(v)
		if _, err := wire.Decode(buf); err != nil {
			t.Fatalf("re-decode of re-encoded %T failed: %v", v, err)
		}
	})
}
