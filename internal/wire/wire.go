// Package wire is the binary codec used by the network transport: a
// compact, allocation-conscious encoding for the values the SIP sends
// between ranks (messages, blocks, collective traffic).
//
// Values are encoded as a one-byte type id followed by a type-specific
// body.  Each payload type registers an id plus encode/decode functions
// (Register); the envelope functions Encode/Decode and Encoder.Any /
// Decoder.Any dispatch through the registry.  Integers use zigzag
// varints, float64s are fixed 8-byte little-endian (bit-exact round
// trips), and slices are length-prefixed.
//
// Registration must happen during package initialization: the registry
// is read without locking afterwards.  Ids are allocated statically —
// see the id constants of the registering packages — and a duplicate
// registration panics, so collisions surface at process start.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// Encoder appends wire-encoded primitives to a growing buffer.
// Methods never fail; the buffer is complete when the caller is done.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.  The slice aliases the encoder's
// internal storage; it is valid until the next Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the buffer, keeping its capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Int appends a signed integer as a zigzag varint.
func (e *Encoder) Int(v int) { e.buf = binary.AppendVarint(e.buf, int64(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 appends a float64 as 8 little-endian bytes (bit-exact).
func (e *Encoder) Float64(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Ints appends a length-prefixed []int.
func (e *Encoder) Ints(v []int) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Int(x)
	}
}

// IntSlices appends a length-prefixed [][]int.
func (e *Encoder) IntSlices(v [][]int) {
	e.Uvarint(uint64(len(v)))
	for _, s := range v {
		e.Ints(s)
	}
}

// Float64s appends a length-prefixed []float64 in bulk.
func (e *Encoder) Float64s(v []float64) {
	e.Uvarint(uint64(len(v)))
	off := len(e.buf)
	e.buf = append(e.buf, make([]byte, 8*len(v))...)
	for i, f := range v {
		binary.LittleEndian.PutUint64(e.buf[off+8*i:], math.Float64bits(f))
	}
}

// Any appends a registered value as id + body.  It panics on an
// unregistered type: sending an unencodable value over the network is a
// programming error caught in tests, not a runtime condition.
func (e *Encoder) Any(v any) {
	ent, ok := byType[reflect.TypeOf(v)]
	if !ok {
		panic(fmt.Sprintf("wire: unregistered type %T", v))
	}
	e.Byte(ent.id)
	ent.enc(e, v)
}

// Encode wire-encodes one registered value.
func Encode(v any) []byte {
	e := NewEncoder(64)
	e.Any(v)
	return e.Bytes()
}

// Decoder reads wire-encoded primitives from a buffer.  The first
// malformed read latches an error; subsequent reads return zero values,
// so decode sequences can run unchecked and test Err once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Reset rearms the decoder to read buf from the start, clearing any
// latched error, so one decoder can be reused across many frames (the
// transport read loop does this to keep its hot path allocation-free).
func (d *Decoder) Reset(buf []byte) {
	d.buf = buf
	d.off = 0
	d.err = nil
}

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Fail latches a decoding error.  Codec implementations use it to
// reject structurally valid but semantically malformed payloads.
func (d *Decoder) Fail(format string, args ...any) { d.fail(format, args...) }

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail("truncated byte at offset %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int reads a zigzag varint.
func (d *Decoder) Int() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return int(v)
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Float64 reads a fixed 8-byte float64.
func (d *Decoder) Float64() float64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("truncated float64 at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	// Compare in uint64 space: converting a hostile length to int first
	// can go negative and index the buffer backwards.
	if d.err != nil || n > uint64(d.Remaining()) {
		d.fail("truncated string of %d bytes at offset %d", n, d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Ints reads a length-prefixed []int.  A zero length yields nil.
func (d *Decoder) Ints() []int {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(d.Remaining()) { // each element is >= 1 byte
		d.fail("int slice length %d exceeds remaining %d bytes", n, d.Remaining())
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = d.Int()
	}
	return v
}

// IntSlices reads a length-prefixed [][]int.
func (d *Decoder) IntSlices() [][]int {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("slice-of-slices length %d exceeds remaining %d bytes", n, d.Remaining())
		return nil
	}
	v := make([][]int, n)
	for i := range v {
		v[i] = d.Ints()
	}
	return v
}

// Float64s reads a length-prefixed []float64.  A zero length yields nil.
func (d *Decoder) Float64s() []float64 {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	// Divide rather than multiply: 8*n wraps for n >= 2^61, letting a
	// hostile length through to make() and OOM-panicking the rank.
	if n > uint64(d.Remaining())/8 {
		d.fail("float slice length %d exceeds remaining %d bytes", n, d.Remaining())
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off+8*i:]))
	}
	d.off += 8 * int(n)
	return v
}

// Any reads one registered value (id + body).
func (d *Decoder) Any() any {
	id := d.Byte()
	if d.err != nil {
		return nil
	}
	ent := byID[id]
	if ent == nil {
		d.fail("unregistered type id %d", id)
		return nil
	}
	return ent.dec(d)
}

// Decode wire-decodes one registered value from buf.
func Decode(buf []byte) (any, error) {
	d := NewDecoder(buf)
	v := d.Any()
	if d.err != nil {
		return nil, d.err
	}
	return v, nil
}

// ---------------------------------------------------------------------
// Type registry

type entry struct {
	id  byte
	enc func(*Encoder, any)
	dec func(*Decoder) any
}

var (
	regMu  sync.Mutex
	byType = map[reflect.Type]*entry{}
	byID   [256]*entry
)

// Register installs the codec for one payload type under a static wire
// id.  It must be called from package init functions only; duplicate
// ids or types panic.
func Register[T any](id byte, enc func(*Encoder, T), dec func(*Decoder) T) {
	regMu.Lock()
	defer regMu.Unlock()
	var zero T
	t := reflect.TypeOf(zero)
	if t == nil {
		panic("wire: cannot register interface type")
	}
	if byID[id] != nil {
		panic(fmt.Sprintf("wire: id %d registered twice", id))
	}
	if _, ok := byType[t]; ok {
		panic(fmt.Sprintf("wire: type %v registered twice", t))
	}
	ent := &entry{
		id:  id,
		enc: func(e *Encoder, v any) { enc(e, v.(T)) },
		dec: func(d *Decoder) any { return dec(d) },
	}
	byType[t] = ent
	byID[id] = ent
}

// Registered reports whether a codec exists for v's type.
func Registered(v any) bool {
	_, ok := byType[reflect.TypeOf(v)]
	return ok
}

// RegisteredIDs returns the wire ids with an installed codec, for
// registry-coverage checks in tests.
func RegisteredIDs() []byte {
	regMu.Lock()
	defer regMu.Unlock()
	var ids []byte
	for i, ent := range byID {
		if ent != nil {
			ids = append(ids, byte(i))
		}
	}
	return ids
}

// samples holds one encoded example per registered payload type,
// collected at init time; the FuzzDecode seed corpus starts from them
// so every codec's happy path is in the fuzzer's ancestry.
var samples [][]byte

// Sample records an encoded example of a registered value for the fuzz
// seed corpus.  Like Register it must be called from package init
// functions only, after the value's type is registered.
func Sample(v any) {
	regMu.Lock()
	defer regMu.Unlock()
	samples = append(samples, Encode(v))
}

// Corpus returns the encoded samples recorded by Sample.
func Corpus() [][]byte {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([][]byte, len(samples))
	copy(out, samples)
	return out
}

// SizeHinter is an optional payload capability: types that know their
// approximate encoded size report it, so transports can size pooled
// encoders before the first append instead of growing incrementally.
type SizeHinter interface {
	// WireSizeHint returns an upper-ish estimate of the encoded size in
	// bytes.  It need not be exact; a good hint avoids buffer regrowth.
	WireSizeHint() int
}

// SizeHint returns v's encoded-size estimate, or fallback when v does
// not implement SizeHinter (or reports something smaller).
func SizeHint(v any, fallback int) int {
	if h, ok := v.(SizeHinter); ok {
		if n := h.WireSizeHint(); n > fallback {
			return n
		}
	}
	return fallback
}

// Wire ids of the basic types registered by this package.  Packages
// registering their own payloads use the id blocks noted here:
//
//	1..7    basics (this package)
//	8..15   internal/block
//	16..31  internal/mpi (collective traffic)
//	32..63  internal/sip (SIP message types)
const (
	IDString  = 1
	IDFloat64 = 2
	IDInt     = 3
	IDBool    = 4
)

func init() {
	Register(IDString, (*Encoder).String, (*Decoder).String)
	Register(IDFloat64, (*Encoder).Float64, (*Decoder).Float64)
	Register(IDInt, (*Encoder).Int, (*Decoder).Int)
	Register(IDBool, (*Encoder).Bool, (*Decoder).Bool)
	Sample("corpus")
	Sample(3.5)
	Sample(-42)
	Sample(true)
}
