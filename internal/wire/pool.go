package wire

import "sync"

// Encoder pooling for the transport hot path.  Every framed message
// needs a scratch encoder; allocating one per send dominated the TCP
// allocation profile, so transports borrow encoders here instead.
//
// Ownership contract: GetEncoder hands the caller exclusive use of the
// encoder and of the slice Bytes() returns.  Both end at PutEncoder —
// after that the buffer may be handed to another goroutine and
// overwritten, so callers must finish writing (or copy) the bytes
// first.  Returning an encoder is optional; an encoder that is never
// Put is simply garbage-collected.
//
// Two size classes keep block payloads (tens of KiB) from evicting the
// small protocol-message encoders, and a retention ceiling keeps a
// one-off giant frame from pinning its buffer in the pool forever.
const (
	// smallEncoder is the small class's allocation size and the
	// boundary between the two classes.
	smallEncoder = 2 << 10
	// maxPooledEncoder is the retention ceiling: larger buffers are
	// dropped on Put and left to the garbage collector.
	maxPooledEncoder = 1 << 20
)

var (
	encSmall = sync.Pool{New: func() any { return NewEncoder(smallEncoder) }}
	encLarge = sync.Pool{New: func() any { return NewEncoder(64 << 10) }}
)

// GetEncoder returns an empty pooled encoder with at least hint bytes
// of capacity.  Release it with PutEncoder when the encoded bytes are
// no longer referenced.
func GetEncoder(hint int) *Encoder {
	var e *Encoder
	if hint > smallEncoder {
		e = encLarge.Get().(*Encoder)
	} else {
		e = encSmall.Get().(*Encoder)
	}
	e.Reset()
	if cap(e.buf) < hint {
		e.buf = make([]byte, 0, hint)
	}
	return e
}

// PutEncoder returns an encoder obtained from GetEncoder to its pool.
// The caller must no longer reference the encoder or any slice of its
// buffer.  Oversized buffers are dropped rather than retained.
func PutEncoder(e *Encoder) {
	if e == nil || cap(e.buf) > maxPooledEncoder {
		return
	}
	e.Reset()
	if cap(e.buf) > smallEncoder {
		encLarge.Put(e)
	} else {
		encSmall.Put(e)
	}
}
