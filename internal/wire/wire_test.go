package wire

import (
	"math"
	"reflect"
	"testing"
)

func TestPrimitiveRoundTrips(t *testing.T) {
	e := NewEncoder(0)
	e.Byte(0xab)
	e.Uvarint(1 << 40)
	e.Int(-12345)
	e.Int(0)
	e.Bool(true)
	e.Bool(false)
	e.Float64(math.Pi)
	e.Float64(math.Inf(-1))
	e.String("héllo")
	e.String("")
	e.Ints([]int{3, -1, 1 << 30})
	e.Ints(nil)
	e.IntSlices([][]int{{1, 2}, {}, {-7}})
	e.Float64s([]float64{1.5, -2.25, 0})

	d := NewDecoder(e.Bytes())
	if got := d.Byte(); got != 0xab {
		t.Errorf("Byte = %x", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Int(); got != -12345 {
		t.Errorf("Int = %d", got)
	}
	if got := d.Int(); got != 0 {
		t.Errorf("Int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.Float64(); got != math.Pi {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.Float64(); !math.IsInf(got, -1) {
		t.Errorf("Float64 = %v, want -Inf", got)
	}
	if got := d.String(); got != "héllo" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("String = %q", got)
	}
	if got := d.Ints(); !reflect.DeepEqual(got, []int{3, -1, 1 << 30}) {
		t.Errorf("Ints = %v", got)
	}
	if got := d.Ints(); got != nil {
		t.Errorf("nil Ints = %v", got)
	}
	if got := d.IntSlices(); !reflect.DeepEqual(got, [][]int{{1, 2}, nil, {-7}}) {
		t.Errorf("IntSlices = %v", got)
	}
	if got := d.Float64s(); !reflect.DeepEqual(got, []float64{1.5, -2.25, 0}) {
		t.Errorf("Float64s = %v", got)
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
}

func TestFloat64BitExact(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), math.NaN(), math.SmallestNonzeroFloat64, -math.MaxFloat64}
	e := NewEncoder(0)
	for _, v := range vals {
		e.Float64(v)
	}
	d := NewDecoder(e.Bytes())
	for i, want := range vals {
		got := d.Float64()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("value %d: bits %x, want %x", i, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestAnyRoundTrip(t *testing.T) {
	for _, v := range []any{"hi", 3.5, -9, true} {
		buf := Encode(v)
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%v): %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestAnyUnregisteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unregistered type")
		}
	}()
	Encode(struct{ X int }{1})
}

func TestDecodeErrors(t *testing.T) {
	// Truncated body.
	if _, err := Decode([]byte{IDFloat64, 1, 2}); err == nil {
		t.Error("truncated float64 decoded without error")
	}
	// Unregistered id.
	if _, err := Decode([]byte{200}); err == nil {
		t.Error("unknown id decoded without error")
	}
	// Empty buffer.
	if _, err := Decode(nil); err == nil {
		t.Error("empty buffer decoded without error")
	}
	// Hostile slice length: claims 2^50 elements in a 3-byte body.
	e := NewEncoder(0)
	e.Uvarint(1 << 50)
	d := NewDecoder(e.Bytes())
	if got := d.Float64s(); got != nil || d.Err() == nil {
		t.Error("oversized float slice length was not rejected")
	}
	// Errors latch: later reads keep failing without panicking.
	if d.Int() != 0 || d.Err() == nil {
		t.Error("latched error did not persist")
	}
}

// TestDecodeLengthOverflow pins the wrapped-length guards: counts big
// enough that a naive byte-count multiply (or int conversion) wraps
// must latch a decode error, not pass the bounds check and OOM-panic
// in make (Float64s) or slice backwards (String).
func TestDecodeLengthOverflow(t *testing.T) {
	hostile := []uint64{1 << 61, 1<<61 + 1, 1 << 62, math.MaxUint64, math.MaxUint64 - 7}
	for _, n := range hostile {
		e := NewEncoder(0)
		e.Uvarint(n)
		e.Float64(1) // a few real bytes so Remaining() > 0
		d := NewDecoder(e.Bytes())
		if got := d.Float64s(); got != nil || d.Err() == nil {
			t.Errorf("Float64s length %d was not rejected", n)
		}

		d = NewDecoder(e.Bytes())
		if got := d.String(); got != "" || d.Err() == nil {
			t.Errorf("String length %d was not rejected", n)
		}

		d = NewDecoder(e.Bytes())
		if got := d.Ints(); got != nil || d.Err() == nil {
			t.Errorf("Ints length %d was not rejected", n)
		}

		d = NewDecoder(e.Bytes())
		if got := d.IntSlices(); got != nil || d.Err() == nil {
			t.Errorf("IntSlices length %d was not rejected", n)
		}
	}
}

// TestDecodeCraftedFrame drives the same overflow through the public
// envelope: a crafted frame claiming a wrapped float-slice length must
// come back as a decode error from wire.Decode, the way a transport
// sees it.
func TestDecodeCraftedFrame(t *testing.T) {
	e := NewEncoder(0)
	e.Byte(IDFloat64)  // any registered id would do; the guard is generic
	frame := e.Bytes() // truncated body exercises the latched-error path
	if _, err := Decode(frame); err == nil {
		t.Fatal("truncated crafted frame decoded without error")
	}
}

func TestEncoderPool(t *testing.T) {
	e := GetEncoder(100)
	if e.Len() != 0 {
		t.Fatalf("pooled encoder not empty: %d bytes", e.Len())
	}
	if cap(e.Bytes()) == 0 {
		t.Fatal("pooled encoder has no capacity")
	}
	e.String("hello")
	PutEncoder(e)

	big := GetEncoder(128 << 10)
	if cap(big.Bytes()) < 128<<10 {
		t.Fatalf("size hint not honored: cap %d", cap(big.Bytes()))
	}
	big.Float64s(make([]float64, 1024))
	PutEncoder(big)

	again := GetEncoder(64)
	if again.Len() != 0 {
		t.Fatalf("reused encoder not reset: %d bytes", again.Len())
	}
	PutEncoder(again)
	PutEncoder(nil) // must not panic
}

func TestSizeHint(t *testing.T) {
	if got := SizeHint("no hinter", 64); got != 64 {
		t.Errorf("SizeHint fallback = %d, want 64", got)
	}
	if got := SizeHint(sizeHinted{n: 4096}, 64); got != 4096 {
		t.Errorf("SizeHint = %d, want 4096", got)
	}
	if got := SizeHint(sizeHinted{n: 8}, 64); got != 64 {
		t.Errorf("SizeHint below fallback = %d, want 64", got)
	}
}

type sizeHinted struct{ n int }

func (s sizeHinted) WireSizeHint() int { return s.n }

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate id")
		}
	}()
	Register(IDString, func(e *Encoder, v int8) {}, func(d *Decoder) int8 { return 0 })
}
