#!/usr/bin/env bash
# scripts/bench.sh — run the repo's benchmark series and record the
# results as JSON at the repo root:
#
#   BENCH_mp2.json   end-to-end MP2 on the SIP + the block contraction
#                    kernel (compute path)
#   BENCH_wire.json  transport loopback echo + in-process MPI round
#                    trip (message path)
#   BENCH_serve.json overlapping MP2 submissions through the job
#                    service (jobs/sec; docs/SERVE.md)
#
# The JSON files are checked in as a coarse performance baseline and
# uploaded as a CI artifact, so regressions show up in review diffs.
#
#   BENCH_TIME=2s BENCH_COUNT=3 scripts/bench.sh   # longer, repeated runs
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_TIME="${BENCH_TIME:-1s}"
BENCH_COUNT="${BENCH_COUNT:-1}"

# to_json converts `go test -bench` output on stdin into a JSON
# document: one object per benchmark line, units mangled into JSON keys
# (ns/op -> ns_per_op, MB/s -> MB_per_s).
to_json() {
  awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  /^(goos|goarch|pkg|cpu):/ {
    key = $1; sub(/:$/, "", key)
    val = $0; sub(/^[a-z]+: */, "", val)
    meta[key] = val
    next
  }
  /^Benchmark/ && NF >= 4 {
    line = "{\"name\":\"" $1 "\",\"runs\":" $2
    for (i = 3; i + 1 <= NF; i += 2) {
      unit = $(i + 1)
      gsub(/\//, "_per_", unit)
      gsub(/[^A-Za-z0-9_]/, "_", unit)
      line = line ",\"" unit "\":" $i
    }
    out[n++] = line "}"
    next
  }
  END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", meta["goos"]
    printf "  \"goarch\": \"%s\",\n", meta["goarch"]
    printf "  \"cpu\": \"%s\",\n", meta["cpu"]
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "    %s%s\n", out[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
  }'
}

bench() { # bench <regexp> <outfile>
  local re="$1" out="$2" tmp
  tmp="$(mktemp)"
  go test -run '^$' -bench "$re" -benchmem \
    -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" . | tee "$tmp"
  to_json <"$tmp" >"$out"
  rm -f "$tmp"
  echo "wrote $out"
}

echo "== compute path: MP2 end-to-end + contraction kernel =="
bench '^(BenchmarkMP2EndToEnd|BenchmarkContraction)$' BENCH_mp2.json

echo "== message path: transport loopback + MPI round trip =="
bench '^(BenchmarkTransportLoopback|BenchmarkMPIRoundTrip)$' BENCH_wire.json

echo "== job service: overlapping MP2 submissions =="
bench '^BenchmarkServeThroughput$' BENCH_serve.json
