#!/usr/bin/env bash
# scripts/bench.sh — run the repo's benchmark series and record the
# results as JSON at the repo root:
#
#   BENCH_mp2.json   end-to-end MP2 on the SIP + the block contraction
#                    kernel (compute path)
#   BENCH_wire.json  transport loopback echo + in-process MPI round
#                    trip (message path)
#   BENCH_serve.json overlapping MP2 submissions through the job
#                    service (jobs/sec; docs/SERVE.md)
#
# The JSON files are checked in as a coarse performance baseline and
# uploaded as a CI artifact, so regressions show up in review diffs.
# Each run also diffs its fresh numbers against the checked-in baseline
# it is about to overwrite and writes the comparison to
# BENCH_compare.txt, flagging any benchmark whose ns/op or allocs/op
# grew by more than BASELINE_WARN_PCT (default 20%).  The comparison is
# advisory — benchmarks on shared CI runners are noisy — so it warns
# rather than fails; CI uploads it as an artifact for review.
#
#   BENCH_TIME=2s BENCH_COUNT=3 scripts/bench.sh   # longer, repeated runs
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_TIME="${BENCH_TIME:-1s}"
BENCH_COUNT="${BENCH_COUNT:-1}"
BASELINE_WARN_PCT="${BASELINE_WARN_PCT:-20}"
COMPARE_OUT="BENCH_compare.txt"

# to_json converts `go test -bench` output on stdin into a JSON
# document: one object per benchmark line, units mangled into JSON keys
# (ns/op -> ns_per_op, MB/s -> MB_per_s).
to_json() {
  awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  /^(goos|goarch|pkg|cpu):/ {
    key = $1; sub(/:$/, "", key)
    val = $0; sub(/^[a-z]+: */, "", val)
    meta[key] = val
    next
  }
  /^Benchmark/ && NF >= 4 {
    line = "{\"name\":\"" $1 "\",\"runs\":" $2
    for (i = 3; i + 1 <= NF; i += 2) {
      unit = $(i + 1)
      gsub(/\//, "_per_", unit)
      gsub(/[^A-Za-z0-9_]/, "_", unit)
      line = line ",\"" unit "\":" $i
    }
    out[n++] = line "}"
    next
  }
  END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", meta["goos"]
    printf "  \"goarch\": \"%s\",\n", meta["goarch"]
    printf "  \"cpu\": \"%s\",\n", meta["cpu"]
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "    %s%s\n", out[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
  }'
}

# compare_baseline <baseline.json> <fresh.json> — line-per-benchmark
# diff of ns_per_op and allocs_per_op, warning above BASELINE_WARN_PCT.
# Both files use to_json's format: one benchmark object per line.
compare_baseline() {
  awk -v warn="$BASELINE_WARN_PCT" '
  function num(line, key,   s) {
    if (match(line, "\"" key "\":[-+0-9.eE]+")) {
      s = substr(line, RSTART, RLENGTH)
      sub("\"" key "\":", "", s)
      return s + 0
    }
    return -1
  }
  function bname(line,   s) {
    if (match(line, "\"name\":\"[^\"]+\"")) {
      s = substr(line, RSTART + 8, RLENGTH - 9)
      return s
    }
    return ""
  }
  FNR == NR {
    if ((n = bname($0)) != "") {
      base_ns[n] = num($0, "ns_per_op")
      base_al[n] = num($0, "allocs_per_op")
    }
    next
  }
  {
    n = bname($0)
    if (n == "" || !(n in base_ns)) next
    ns = num($0, "ns_per_op"); al = num($0, "allocs_per_op")
    line = sprintf("  %-50s", n)
    if (base_ns[n] > 0 && ns >= 0) {
      pct = (ns - base_ns[n]) / base_ns[n] * 100
      line = line sprintf(" ns/op %12.0f -> %-12.0f (%+6.1f%%)", base_ns[n], ns, pct)
      if (pct > warn) { line = line " REGRESSION"; bad++ }
    }
    if (base_al[n] >= 0 && al >= 0) {
      pct = base_al[n] > 0 ? (al - base_al[n]) / base_al[n] * 100 : (al > 0 ? 100 : 0)
      line = line sprintf("  allocs/op %6.0f -> %-6.0f (%+6.1f%%)", base_al[n], al, pct)
      if (pct > warn) { line = line " REGRESSION"; bad++ }
    }
    print line
  }
  END {
    if (bad > 0)
      printf "  WARNING: %d metric(s) regressed more than %s%% vs the checked-in baseline\n", bad, warn
  }' "$1" "$2"
}

bench() { # bench <regexp> <outfile>
  local re="$1" out="$2" tmp baseline=""
  tmp="$(mktemp)"
  go test -run '^$' -bench "$re" -benchmem \
    -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" . | tee "$tmp"
  if [ -f "$out" ]; then
    baseline="$(mktemp)"
    cp "$out" "$baseline"
  fi
  to_json <"$tmp" >"$out"
  rm -f "$tmp"
  echo "wrote $out"
  if [ -n "$baseline" ]; then
    {
      echo "$out vs checked-in baseline (warn at +${BASELINE_WARN_PCT}%):"
      compare_baseline "$baseline" "$out"
    } | tee -a "$COMPARE_OUT"
    rm -f "$baseline"
  fi
}

: >"$COMPARE_OUT"
echo "baseline comparison $(date -u +%Y-%m-%dT%H:%M:%SZ)" >>"$COMPARE_OUT"

echo "== compute path: MP2 end-to-end + contraction kernel =="
bench '^(BenchmarkMP2EndToEnd|BenchmarkContraction)$' BENCH_mp2.json

echo "== message path: transport loopback + MPI round trip =="
bench '^(BenchmarkTransportLoopback|BenchmarkMPIRoundTrip)$' BENCH_wire.json

echo "== job service: overlapping MP2 submissions =="
bench '^BenchmarkServeThroughput$' BENCH_serve.json
